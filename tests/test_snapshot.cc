// The epoch-pinned snapshot read layer (core/snapshot.h): unit tests for
// SnapshotStore publication/pinning, the ApplyBatch publication point, and
// the reader-vs-writer race the layer exists for — a reader thread pinning
// and enumerating snapshots WHILE maintenance bursts apply on the live
// view. The race test runs under the TSan CI job with MMV_THREADS=8, so
// the reader crosses both the batch pipeline and its parallel fan-out.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/snapshot.h"
#include "durability/durable_log.h"
#include "durability/fs.h"
#include "maintenance/batch.h"
#include "parser/view_io.h"
#include "query/query.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::Instances;
using testutil::ParseOrDie;
using testutil::ParseUpdate;
using testutil::TestWorld;
using testutil::Unwrap;

TEST(SnapshotStoreTest, StartsAtEmptyEpochZero) {
  SnapshotStore store;
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_EQ(store.epochs_published(), 0);
  SnapshotHandle h = store.Pin();
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->epoch, 0u);
  ASSERT_NE(h->image, nullptr);
  EXPECT_TRUE(h->image->empty());
}

TEST(SnapshotStoreTest, PublishBumpsEpochAndIsolatesOlderPins) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1.");
  View live = testutil::MaterializeOrDie(p, w.domains.get());

  SnapshotStore store;
  EXPECT_EQ(store.Publish(live), 1u);
  SnapshotHandle pinned = store.Pin();
  EXPECT_EQ(pinned->epoch, 1u);
  size_t pinned_size = pinned->image->size();

  // Mutate the live view and publish again: the old pin must not move.
  live.RemoveIf([](const ViewAtom&) { return true; });
  EXPECT_EQ(store.Publish(live), 2u);
  EXPECT_EQ(store.epoch(), 2u);
  EXPECT_EQ(pinned->epoch, 1u);
  EXPECT_EQ(pinned->image->size(), pinned_size);
  EXPECT_EQ(store.Pin()->image->size(), 0u);

  // A snapshot is an immutable image: its per-pred segments answer reads
  // on their own, with no reference back to the live view.
  EXPECT_EQ(pinned->image->AtomsFor("a").size(), pinned_size);
}

TEST(SnapshotStoreTest, ApplyBatchPublishesOneEpochPerCleanBurst) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("base(X) <- X = 0. d(X) <- base(X).");
  View live = testutil::MaterializeOrDie(p, w.domains.get());

  SnapshotStore store;
  store.Publish(live);  // epoch 1 = the initial materialization

  std::vector<maint::Update> burst;
  burst.push_back(maint::Update::Insert(ParseUpdate("base(X) <- X = 1.", &p)));
  burst.push_back(maint::Update::Insert(ParseUpdate("base(X) <- X = 2.", &p)));
  maint::BatchStats stats;
  ASSERT_TRUE(maint::ApplyBatch(p, &live, burst, w.domains.get(), {}, &stats,
                                nullptr, &store)
                  .ok());
  EXPECT_EQ(stats.epochs_published, 1);  // one epoch per batch, not per pass
  EXPECT_EQ(store.epoch(), 2u);
  EXPECT_EQ(Instances(store.Pin(), w.domains.get()),
            Instances(live, w.domains.get()));

  // Without a store attached nothing is published.
  maint::BatchStats stats2;
  ASSERT_TRUE(maint::ApplyBatch(p, &live, burst, w.domains.get(), {}, &stats2)
                  .ok());
  EXPECT_EQ(stats2.epochs_published, 0);
  EXPECT_EQ(store.epoch(), 2u);
}

TEST(SnapshotStoreTest, FailedBatchPublishesNothing) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("base(X) <- X = 0. d(X) <- base(X).");
  View live = testutil::MaterializeOrDie(p, w.domains.get());
  SnapshotStore store;
  store.Publish(live);  // epoch 1

  // A constraint over an unregistered domain makes the insertion
  // continuation's solvability check fail, so the batch errors out after
  // the view was already touched — readers must keep the pre-batch epoch.
  std::vector<maint::Update> burst;
  burst.push_back(
      maint::Update::Insert(ParseUpdate("base(X) <- in(X, nosuch:f(1)).", &p)));
  maint::BatchStats stats;
  Status s = maint::ApplyBatch(p, &live, burst, w.domains.get(), {}, &stats,
                               nullptr, &store);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(stats.epochs_published, 0);
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_EQ(store.Pin()->epoch, 1u);
}

TEST(SnapshotQueryTest, SnapshotHandleOverloadsMatchLiveReads) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    e(X, Y) <- X = 1 & Y = 2.
    e(X, Y) <- X = 1 & Y = 3.
  )");
  View live = testutil::MaterializeOrDie(p, w.domains.get());
  SnapshotStore store;
  store.Publish(live);
  SnapshotHandle h = store.Pin();

  query::InstanceSet via_handle =
      Unwrap(query::EnumerateView(h, w.domains.get()));
  query::InstanceSet via_view =
      Unwrap(query::EnumerateView(live, w.domains.get()));
  EXPECT_EQ(via_handle, via_view);

  query::InstanceSet q = Unwrap(query::QueryPred(
      h, "e", {Term::Const(Value(1)), Term::Var(0)}, w.domains.get()));
  EXPECT_EQ(q.instances.size(), 2u);
  EXPECT_TRUE(Unwrap(query::Ask(h, "e", {Value(1), Value(2)},
                                w.domains.get())));
  EXPECT_FALSE(Unwrap(query::Ask(h, "e", {Value(9), Value(9)},
                                 w.domains.get())));
}

// The image serialization the checkpoint writer uses must be byte-for-byte
// the view serialization — both on a fresh extraction and on the
// incremental share-most-segments path a batch leaves behind.
TEST(SnapshotImageTest, SerializeImageMatchesSerializeViewByteForByte) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeMultiChain(/*chains=*/3, /*depth=*/3,
                                       /*width=*/8);
  View live = testutil::MaterializeOrDie(p, w.domains.get());
  EXPECT_EQ(parser::SerializeImage(*live.ExtractImage()),
            parser::SerializeView(live));

  std::vector<maint::Update> burst;
  burst.push_back(maint::Update::Delete(ParseUpdate("c0_p0(X) <- X = 0.", &p)));
  burst.push_back(maint::Update::Insert(ParseUpdate("c1_p0(X) <- X = 99.", &p)));
  ASSERT_TRUE(
      maint::ApplyBatch(p, &live, burst, w.domains.get(), {}, nullptr).ok());
  EXPECT_EQ(parser::SerializeImage(*live.ExtractImage()),
            parser::SerializeView(live));
}

// The structural-sharing contract, witnessed by pointer identity: a slow
// reader pins epoch E while later batches touch only chain 0 and the
// durable log checkpoints + garbage-collects underneath. Every read at E
// stays byte-identical, and the segments of the UNTOUCHED chains are the
// very same objects in every later epoch's image — publication copied
// only the delta.
// View copies share copy-on-write image state instead of duplicating the
// dirty bookkeeping: copying a DIRTY view first refreshes the source's
// image cache, and both sides then extract the SAME shared segments —
// pointer identity, not content equality. (The regression this pins: an
// implicitly copied dirty set made source and copy re-materialize the same
// dirty segments independently, forking every downstream consumer.)
TEST(SnapshotSharing, CopiedViewSharesImageStateWithSource) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeMultiChain(/*chains=*/2, /*depth=*/2,
                                       /*width=*/4);
  View source = testutil::MaterializeOrDie(p, w.domains.get());
  source.ExtractImage();  // warm the cache

  // Dirty one predicate, then copy while the dirty set is non-empty.
  size_t idx = source.AtomsFor("c0_p0").front();
  source.MutableAtom(idx);  // conservatively dirties c0_p0

  View copy = source;
  SnapshotImageHandle from_source = source.ExtractImage();
  SnapshotImageHandle from_copy = copy.ExtractImage();
  ASSERT_EQ(from_source->segments.size(), from_copy->segments.size());
  for (const auto& [pred, seg] : from_source->segments) {
    // Same shared_ptr: the copy re-derived nothing, clean or dirty.
    EXPECT_EQ(seg, from_copy->SegmentFor(pred))
        << "copied view forked segment " << pred.name();
  }
  EXPECT_EQ(parser::SerializeImage(*from_source),
            parser::SerializeImage(*from_copy));

  // Copy ASSIGNMENT shares the same way.
  View assigned;
  assigned = source;
  SnapshotImageHandle from_assigned = assigned.ExtractImage();
  for (const auto& [pred, seg] : from_source->segments) {
    EXPECT_EQ(seg, from_assigned->SegmentFor(pred));
  }

  // Independence after the copy: mutating the source re-materializes only
  // ITS segment; the copy keeps sharing the rest and never sees the edit.
  source.MutableAtom(idx);
  SnapshotImageHandle source_after = source.ExtractImage();
  SnapshotImageHandle copy_after = copy.ExtractImage();
  EXPECT_EQ(copy_after->SegmentFor("c0_p0"), from_copy->SegmentFor("c0_p0"));
  for (const auto& [pred, seg] : copy_after->segments) {
    if (!(pred == Symbol("c0_p0"))) {
      EXPECT_EQ(seg, source_after->SegmentFor(pred));
    }
  }
}

TEST(SnapshotSharing, SlowReaderSharesUntouchedSegmentsAcrossEpochs) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeMultiChain(/*chains=*/3, /*depth=*/3,
                                       /*width=*/8);
  View live = testutil::MaterializeOrDie(p, w.domains.get());

  SnapshotStore store;
  store.Publish(live);  // epoch 1
  durability::MemFs fs;
  durability::DurabilityOptions opts;
  opts.checkpoint_every_records = 1;  // checkpoint + GC every burst
  opts.keep_checkpoints = 2;
  std::unique_ptr<durability::DurableLog> log =
      Unwrap(durability::DurableLog::Create(&fs, "state", p, live,
                                            store.epoch(), 0, opts));

  SnapshotHandle slow = store.Pin();
  ASSERT_EQ(slow->epoch, 1u);
  const std::string frozen = parser::SerializeImage(*slow->image);

  // Predicates the bursts never touch: every derived level of chains 1-2.
  std::vector<Symbol> untouched;
  for (int c = 1; c <= 2; ++c) {
    for (int l = 0; l < 3; ++l) {
      untouched.push_back(
          Symbol("c" + std::to_string(c) + "_p" + std::to_string(l)));
    }
  }

  SnapshotHandle prev = slow;
  for (int k = 0; k < 6; ++k) {
    std::vector<maint::Update> burst;
    const bool deleting = k % 2 == 0;
    for (int i = 0; i < 4; ++i) {
      maint::UpdateAtom atom =
          ParseUpdate("c0_p0(X) <- X = " + std::to_string(i) + ".", &p);
      burst.push_back(deleting ? maint::Update::Delete(std::move(atom))
                               : maint::Update::Insert(std::move(atom)));
    }
    maint::BatchStats stats;
    ASSERT_TRUE(maint::ApplyBatch(p, &live, burst, w.domains.get(), {},
                                  &stats, log->ext_counter(), &store,
                                  log.get())
                    .ok());
    EXPECT_GT(stats.snapshot_nodes_shared, 0);
    SnapshotHandle now = store.Pin();
    EXPECT_EQ(now->epoch, 2u + k);
    for (Symbol pred : untouched) {
      // Same shared_ptr, not just equal contents: the segment was never
      // copied — the slow reader and the newest epoch read one object.
      EXPECT_EQ(now->image->SegmentFor(pred), slow->image->SegmentFor(pred))
          << "epoch " << now->epoch << " copied untouched segment "
          << pred.name();
      EXPECT_NE(now->image->SegmentFor(pred), nullptr);
    }
    // The touched predicate was rewritten: later epochs must NOT alias
    // the slow reader's segment.
    EXPECT_NE(now->image->SegmentFor("c0_p0"),
              slow->image->SegmentFor("c0_p0"));
    // The slow pin is untouched by publication, checkpointing and GC.
    EXPECT_EQ(parser::SerializeImage(*slow->image), frozen);
    prev = now;
  }
  EXPECT_GT(log->checkpoints_written(), 1);
  EXPECT_EQ(Instances(prev, w.domains.get()), Instances(live, w.domains.get()));
}

// The tentpole differential: a reader thread continuously pins the latest
// epoch and enumerates it while the writer applies a sequence of K-update
// bursts through ApplyBatch (honoring $MMV_THREADS, so the TSan job runs
// the batch's parallel fan-out underneath the reader). Every read the
// reader takes — whatever instant it raced — must be byte-identical to the
// sequential-oracle view of the epoch it pinned, and the final epoch must
// equal ApplyUpdatesSequential's result.
//
// The reader is a plain std::thread rather than a ThreadPool item: the
// engine's ParallelFor batches never nest, so occupying the pool with a
// long-running reader would silently degrade the writer's fan-out to
// inline execution — the exact concurrency this test exists to cross.
TEST(SnapshotConcurrency, ReaderPinsStableEpochsDuringBatches) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeMultiChain(/*chains=*/4, /*depth=*/4,
                                       /*width=*/12);

  FixpointOptions fp;
  {
    Result<int> env_threads = ThreadsFromEnv();
    ASSERT_TRUE(env_threads.ok()) << env_threads.status().ToString();
    fp.num_threads = *env_threads;
  }
  View initial = Unwrap(Materialize(p, w.domains.get(), fp));

  // Bursts: clear chain 0's base facts, re-insert them, then mixed
  // delete+insert — each burst is one published epoch.
  std::vector<std::vector<maint::Update>> bursts;
  {
    std::vector<maint::Update> del, ins, mixed;
    for (int i = 0; i < 12; ++i) {
      del.push_back(maint::Update::Delete(
          ParseUpdate("c0_p0(X) <- X = " + std::to_string(i) + ".", &p)));
      ins.push_back(maint::Update::Insert(
          ParseUpdate("c0_p0(X) <- X = " + std::to_string(i) + ".", &p)));
    }
    for (int i = 0; i < 6; ++i) {
      mixed.push_back(maint::Update::Delete(
          ParseUpdate("c1_p0(X) <- X = " + std::to_string(i) + ".", &p)));
      mixed.push_back(maint::Update::Insert(
          ParseUpdate("c2_p0(X) <- X = " + std::to_string(100 + i) + ".",
                      &p)));
    }
    bursts.push_back(std::move(del));
    bursts.push_back(std::move(ins));
    bursts.push_back(std::move(mixed));
  }

  // Per-epoch oracle: epoch 0 is the empty store, epoch 1 the initial
  // view, epoch 1+k the sequential replay of the first k bursts.
  std::vector<std::set<std::string>> expected;
  expected.push_back({});  // epoch 0
  {
    View oracle = initial;
    int counter = 0;
    expected.push_back(Instances(oracle, w.domains.get()));  // epoch 1
    for (const auto& burst : bursts) {
      ASSERT_TRUE(maint::ApplyUpdatesSequential(p, &oracle, burst,
                                                w.domains.get(), {}, nullptr,
                                                &counter)
                      .ok());
      expected.push_back(Instances(oracle, w.domains.get()));
    }
  }

  SnapshotStore store;
  store.Publish(initial);  // epoch 1

  // The reader shares the evaluator with the writer: the standard domains
  // are ConcurrentCallSafe and the call cache is off, so DomainManager is
  // ConcurrentReadSafe — the production serving configuration.
  std::atomic<bool> stop{false};
  std::vector<std::pair<uint64_t, std::set<std::string>>> observed;
  std::atomic<bool> reader_failed{false};
  std::thread reader([&] {
    // do-while: at least one read happens even if the OS schedules this
    // thread only after the writer has finished every burst — the
    // observed-reads assertion below must not depend on the schedule.
    do {
      SnapshotHandle h = store.Pin();
      Result<query::InstanceSet> r =
          query::EnumerateView(h, w.domains.get());
      if (!r.ok()) {
        reader_failed.store(true);
        return;
      }
      std::set<std::string> strings;
      for (const query::Instance& i : r->instances) {
        strings.insert(i.ToString());
      }
      observed.emplace_back(h->epoch, std::move(strings));
    } while (!stop.load(std::memory_order_acquire));
  });

  View live = initial;
  int counter = 0;
  for (const auto& burst : bursts) {
    ASSERT_TRUE(maint::ApplyBatch(p, &live, burst, w.domains.get(), fp,
                                  nullptr, &counter, &store)
                    .ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  ASSERT_FALSE(reader_failed.load());

  // Every read, whenever it raced, saw exactly its pinned epoch's
  // sequential-oracle instances.
  ASSERT_FALSE(observed.empty());
  for (const auto& [epoch, strings] : observed) {
    ASSERT_LT(epoch, expected.size());
    EXPECT_EQ(strings, expected[epoch])
        << "snapshot read at epoch " << epoch
        << " diverged from the sequential oracle";
  }

  // The post-batch epoch equals the sequential-oracle result.
  SnapshotHandle final_pin = store.Pin();
  EXPECT_EQ(final_pin->epoch, 1 + bursts.size());
  EXPECT_EQ(Instances(final_pin, w.domains.get()), expected.back());
  EXPECT_EQ(Instances(live, w.domains.get()), expected.back());
}

}  // namespace
}  // namespace mmv
