// Unit tests for the Straight Delete (StDel) algorithm beyond the paper's
// worked examples.

#include <gtest/gtest.h>

#include "maintenance/stdel.h"
#include "query/query.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::Instances;
using testutil::InstancesOf;
using testutil::MaterializeOrDie;
using testutil::ParseOrDie;
using testutil::ParseUpdate;
using testutil::TestWorld;
using testutil::Unwrap;

// Convenience: run StDel and compare against the declarative rewrite.
void ExpectStDelMatchesOracle(Program& program, const maint::UpdateAtom& req,
                              TestWorld& world) {
  View view = MaterializeOrDie(program, world.domains.get());
  Status s = maint::DeleteStDel(program, &view, req, world.domains.get());
  ASSERT_TRUE(s.ok()) << s.ToString();
  View oracle = Unwrap(
      maint::RecomputeAfterDeletion(program, req, world.domains.get()));
  EXPECT_EQ(Instances(view, world.domains.get()),
            Instances(oracle, world.domains.get()));
}

// Largest variable id actually occurring in the view's atoms.
VarId ScanMaxVar(const View& view) {
  VarId max_id = -1;
  for (const ViewAtom& a : view.atoms()) {
    std::vector<VarId> vars;
    CollectVars(a.args, &vars);
    for (VarId v : vars) max_id = std::max(max_id, v);
    for (VarId v : a.constraint.Variables()) max_id = std::max(max_id, v);
  }
  return max_id;
}

TEST(StDelTest, HighWaterMarkCoversInjectedVariables) {
  // Deletion subtraction writes freshly-issued variables into surviving
  // constraints (symbolic not-blocks). The view's MaxVarId must stay above
  // every variable actually present, or the next update's standardize-apart
  // renaming could capture them.
  TestWorld w = TestWorld::Make();
  // Interval-only constraints: not finitely enumerable, so subtraction
  // takes the symbolic path that injects renamed request variables.
  Program p = ParseOrDie(
      "a(X) <- X >= 0 & X <= 100. b(X) <- a(X). c(X) <- b(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  maint::UpdateAtom req = ParseUpdate("a(X) <- X >= 10 & X <= 90.", &p);
  ASSERT_TRUE(maint::DeleteStDel(p, &view, req, w.domains.get()).ok());
  EXPECT_GE(view.MaxVarId(), ScanMaxVar(view));

  // A second deletion over the mutated view must also hold the invariant
  // (this is the sequential-capture scenario).
  maint::UpdateAtom req2 = ParseUpdate("b(X) <- X >= 20 & X <= 80.", &p);
  ASSERT_TRUE(maint::DeleteStDel(p, &view, req2, w.domains.get()).ok());
  EXPECT_GE(view.MaxVarId(), ScanMaxVar(view));

  // Point probes of the maintained view (intervals are not enumerable, but
  // ground membership is decidable).
  auto ask = [&](const char* pred, int64_t v) {
    return Unwrap(query::Ask(view, pred, {Value(v)}, w.domains.get()));
  };
  EXPECT_TRUE(ask("a", 5));
  EXPECT_FALSE(ask("a", 50));  // first deletion
  EXPECT_TRUE(ask("b", 5));
  EXPECT_FALSE(ask("b", 50));  // removed by both deletions
  EXPECT_TRUE(ask("b", 95));
  EXPECT_TRUE(ask("c", 95));
  EXPECT_FALSE(ask("c", 30));  // second deletion propagated to c
}

TEST(StDelTest, NoOpWhenNothingMatches) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1. b(X) <- a(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  size_t before = view.size();
  maint::UpdateAtom req = ParseUpdate("a(X) <- X = 99.", &p);
  maint::StDelStats stats;
  ASSERT_TRUE(
      maint::DeleteStDel(p, &view, req, w.domains.get(), {}, &stats).ok());
  EXPECT_EQ(view.size(), before);
  EXPECT_EQ(stats.replacements, 0u);
}

TEST(StDelTest, DeleteEntireBaseFact) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1. a(X) <- X = 2. b(X) <- a(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  maint::UpdateAtom req = ParseUpdate("a(X) <- X = 1.", &p);
  maint::StDelStats stats;
  ASSERT_TRUE(
      maint::DeleteStDel(p, &view, req, w.domains.get(), {}, &stats).ok());
  EXPECT_EQ(Instances(view, w.domains.get()),
            (std::set<std::string>{"a(2)", "b(2)"}));
  EXPECT_GT(stats.removed_unsolvable, 0u);
}

TEST(StDelTest, DeleteAllInstancesOfPredicate) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1. a(X) <- X = 2. b(X) <- a(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  maint::UpdateAtom req = ParseUpdate("a(X) <- true.", &p);
  ASSERT_TRUE(maint::DeleteStDel(p, &view, req, w.domains.get()).ok());
  EXPECT_TRUE(Instances(view, w.domains.get()).empty());
}

TEST(StDelTest, ChainDepthPropagation) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(5, 4);
  maint::UpdateAtom req = workload::DeleteFactRequest(p, 1);
  ExpectStDelMatchesOracle(p, req, *const_cast<TestWorld*>(&w));
}

TEST(StDelTest, DiamondKeepsSecondProof) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeDiamond(2, 3);
  View view = MaterializeOrDie(p, w.domains.get());
  // Delete l(0): the duplicate m-atom derived via r survives, so m(0)
  // remains an instance. (This is where duplicate semantics shines: no
  // rederivation is needed.)
  maint::UpdateAtom req = ParseUpdate("l(X) <- X = 0.", &p);
  ASSERT_TRUE(maint::DeleteStDel(p, &view, req, w.domains.get()).ok());
  auto m = InstancesOf(view, "m", w.domains.get());
  EXPECT_EQ(m.count("m(0)"), 1u);
  auto l = InstancesOf(view, "l", w.domains.get());
  EXPECT_EQ(l.count("l(0)"), 0u);

  View oracle = Unwrap(
      maint::RecomputeAfterDeletion(p, req, w.domains.get()));
  EXPECT_EQ(Instances(view, w.domains.get()),
            Instances(oracle, w.domains.get()));
}

TEST(StDelTest, PartialIntervalDeletion) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 9)).
    b(X) <- a(X).
  )");
  View view = MaterializeOrDie(p, w.domains.get());
  maint::UpdateAtom req =
      ParseUpdate("a(X) <- in(X, arith:between(3, 5)).", &p);
  ASSERT_TRUE(maint::DeleteStDel(p, &view, req, w.domains.get()).ok());
  auto b = InstancesOf(view, "b", w.domains.get());
  EXPECT_EQ(b.size(), 7u);
  EXPECT_EQ(b.count("b(4)"), 0u);
  EXPECT_EQ(b.count("b(2)"), 1u);
}

TEST(StDelTest, SequentialDeletionsAccumulate) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 9)).
    b(X) <- a(X).
  )");
  View view = MaterializeOrDie(p, w.domains.get());
  for (int k = 0; k < 4; ++k) {
    maint::UpdateAtom req = ParseUpdate(
        "a(X) <- X = " + std::to_string(k) + ".", &p);
    ASSERT_TRUE(maint::DeleteStDel(p, &view, req, w.domains.get()).ok());
  }
  EXPECT_EQ(InstancesOf(view, "b", w.domains.get()).size(), 6u);
  EXPECT_EQ(InstancesOf(view, "a", w.domains.get()).size(), 6u);
}

TEST(StDelTest, JoinRuleSiblingsConsidered) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    e(X, Y) <- X = 1 & Y = 2.
    e(X, Y) <- X = 2 & Y = 3.
    e(X, Y) <- X = 1 & Y = 4.
    j(X, Z) <- e(X, Y) & e(Y, Z).
  )");
  View view = MaterializeOrDie(p, w.domains.get());
  ASSERT_EQ(InstancesOf(view, "j", w.domains.get()),
            (std::set<std::string>{"j(1, 3)"}));
  // Deleting e(2,3) (the second joinand) kills j(1,3).
  maint::UpdateAtom req = ParseUpdate("e(X, Y) <- X = 2 & Y = 3.", &p);
  ASSERT_TRUE(maint::DeleteStDel(p, &view, req, w.domains.get()).ok());
  EXPECT_TRUE(InstancesOf(view, "j", w.domains.get()).empty());
  EXPECT_EQ(InstancesOf(view, "e", w.domains.get()).size(), 2u);
}

TEST(StDelTest, RecursiveTransitiveClosure) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeTransitiveClosure(workload::ChainEdges(5));
  View view = MaterializeOrDie(p, w.domains.get());
  // Cut the chain in the middle: edge (2,3).
  maint::UpdateAtom req = ParseUpdate("e(X, Y) <- X = 2 & Y = 3.", &p);
  ASSERT_TRUE(maint::DeleteStDel(p, &view, req, w.domains.get()).ok());
  auto paths = InstancesOf(view, "path", w.domains.get());
  // Remaining paths: within 0-1-2 (3) and within 3-4 (1).
  EXPECT_EQ(paths.size(), 4u);
  EXPECT_EQ(paths.count("path(0, 4)"), 0u);
  EXPECT_EQ(paths.count("path(0, 2)"), 1u);
  EXPECT_EQ(paths.count("path(3, 4)"), 1u);

  View oracle = Unwrap(
      maint::RecomputeAfterDeletion(p, req, w.domains.get()));
  EXPECT_EQ(Instances(view, w.domains.get()),
            Instances(oracle, w.domains.get()));
}

TEST(StDelTest, TransitiveClosureWithDagShortcuts) {
  TestWorld w = TestWorld::Make();
  Rng rng(3);
  auto edges = workload::RandomDagEdges(&rng, 6, 4);
  Program p = workload::MakeTransitiveClosure(edges);
  maint::UpdateAtom req = ParseUpdate(
      "e(X, Y) <- X = 1 & Y = 2.", &p);
  ExpectStDelMatchesOracle(p, req, *const_cast<TestWorld*>(&w));
}

TEST(StDelTest, StatsArePopulated) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(3, 2);
  View view = MaterializeOrDie(p, w.domains.get());
  maint::UpdateAtom req = workload::DeleteFactRequest(p, 0);
  maint::StDelStats stats;
  ASSERT_TRUE(
      maint::DeleteStDel(p, &view, req, w.domains.get(), {}, &stats).ok());
  EXPECT_EQ(stats.del_elements, 1u);
  // One replacement per chain level (fact + 3 derived).
  EXPECT_EQ(stats.replacements, 4u);
  EXPECT_EQ(stats.pout_pairs, 4u);
  EXPECT_EQ(stats.removed_unsolvable, 4u);
  EXPECT_GT(stats.solver.solve_calls, 0);
}

}  // namespace
}  // namespace mmv
