// Crash-recovery differential under fault injection: the durability
// layer's end-to-end contract is that a process killed at an ARBITRARY
// point of its write stream recovers to exactly the state the committed
// prefix of bursts produced — canonical atoms, support multisets, external
// counters and snapshot epoch all byte-identical to an uninterrupted run.
//
// The oracle: a golden run over the same randomized program and bursts
// records the canonical state fingerprint at EVERY epoch prefix (and the
// total mutating-write count W of the workload). A fault run then replays
// the workload on a FaultFs that crashes after a chosen write in
// [create_writes, W] — optionally tearing the crashing write so only a
// prefix of its bytes persists — and recovery runs against the underlying
// MemFs, exactly like a restarted process against the disk image. If
// `ok` bursts applied cleanly before the crash, the recovered epoch R must
// be 1 + ok (the failed burst left no committed record) or 1 + ok + 1 (the
// crash hit the checkpoint AFTER the record committed), and the recovered
// state must equal the golden fingerprint at R. Applying the remaining
// bursts on the recovered timeline must then land on the golden FINAL
// state — crash, recover, continue is indistinguishable from never
// crashing.
//
// On top of the randomized matrix (both duplicate and set semantics):
// a deterministic sweep over EVERY crash point of one workload (torn and
// untorn), and bit-flip trials — interior WAL record, final WAL record,
// newest checkpoint — asserting corruption is either rejected loudly or
// (where it mimics a legal torn tail) recovers a valid golden prefix,
// never silent garbage.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/snapshot.h"
#include "durability/checkpoint.h"
#include "durability/durable_log.h"
#include "durability/fs.h"
#include "durability/wal.h"
#include "maintenance/batch.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using durability::DurabilityOptions;
using durability::DurableLog;
using durability::FaultFs;
using durability::FaultPlan;
using durability::Fs;
using durability::MemFs;
using durability::RecoveryInfo;
using testutil::CanonicalState;
using testutil::TestWorld;
using testutil::Unwrap;

// Aggregate regime counters across the whole suite: the final test asserts
// every interesting fault regime actually occurred (a matrix that only
// ever exercises clean runs proves nothing).
int64_t g_clean_runs = 0;        // crash point beyond the workload
int64_t g_crashed_runs = 0;      // a burst failed mid-workload
int64_t g_torn_tails = 0;        // recovery truncated a torn WAL tail
int64_t g_checkpoint_crashes = 0;  // R == 1 + ok + 1 (crash after commit)
int64_t g_fallbacks = 0;         // recovery skipped an invalid checkpoint
int64_t g_delta_composes = 0;    // recovery composed a full+delta chain

// One randomized workload: program, its initial materialization and a
// sequence of update bursts (same burst-shape idiom as the batch
// differential suite — tiny constant pool, base AND derived predicates).
struct Scenario {
  TestWorld world = TestWorld::Make();
  Program program;
  FixpointOptions fp;
  std::vector<std::vector<maint::Update>> bursts;
  View initial;
};

std::vector<maint::Update> RandomBurst(Rng* rng, Program* program,
                                       const workload::RandomProgramOptions& o,
                                       bool deletions_allowed) {
  int size = static_cast<int>(rng->Int(1, 5));
  std::vector<maint::Update> burst;
  burst.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    maint::UpdateAtom atom;
    if (rng->Chance(0.35)) {
      atom.pred = "d" + std::to_string(rng->Int(0, o.derived_preds - 1));
    } else {
      atom.pred = "base" + std::to_string(rng->Int(0, o.base_preds - 1));
    }
    VarId x = program->factory()->Fresh();
    atom.args = {Term::Var(x)};
    atom.constraint.Add(Primitive::Eq(
        Term::Var(x), Term::Const(Value(rng->Int(0, o.const_pool - 1)))));
    bool is_delete = deletions_allowed && rng->Chance(0.5);
    burst.push_back(is_delete ? maint::Update::Delete(std::move(atom))
                              : maint::Update::Insert(std::move(atom)));
  }
  return burst;
}

Scenario MakeScenario(uint64_t seed, DupSemantics semantics,
                      bool deletions_allowed) {
  Scenario sc;
  Rng rng(seed);
  workload::RandomProgramOptions opts;
  opts.base_preds = 2;
  opts.derived_preds = 3;
  opts.facts_per_pred = 3;
  opts.rules_per_pred = 2;
  opts.const_pool = 5;
  if (deletions_allowed) opts.interval_fact_prob = 0;
  sc.program = workload::MakeRandomProgram(&rng, opts);
  sc.fp.semantics = semantics;
  int bursts = static_cast<int>(rng.Int(3, 6));
  for (int i = 0; i < bursts; ++i) {
    sc.bursts.push_back(
        RandomBurst(&rng, &sc.program, opts, deletions_allowed));
  }
  sc.initial = Unwrap(Materialize(sc.program, sc.world.domains.get(), sc.fp));
  return sc;
}

// Golden fingerprints, indexed by epoch: state[1] is the initial
// materialization, state[1 + k] the state after the k-th burst.
struct Golden {
  std::vector<std::multiset<std::string>> state;
  std::vector<int> ext;
  int64_t writes_after_create = 0;
  int64_t total_writes = 0;
};

// Runs the whole workload with durability on \p fs (no faults expected)
// and records the per-epoch fingerprints.
Golden BuildState(Scenario* sc, Fs* fs, const DurabilityOptions& opts,
                  FaultFs* counter = nullptr) {
  Golden g;
  SnapshotStore store;
  store.Publish(sc->initial);  // epoch 1
  std::unique_ptr<DurableLog> log = Unwrap(DurableLog::Create(
      fs, "state", sc->program, sc->initial, /*initial_epoch=*/1,
      /*ext_counter=*/0, opts));
  if (counter != nullptr) g.writes_after_create = counter->writes_done();
  g.state.resize(sc->bursts.size() + 2);
  g.ext.resize(sc->bursts.size() + 2);
  g.state[1] = CanonicalState(sc->initial);
  g.ext[1] = 0;
  View view = sc->initial;
  for (size_t k = 0; k < sc->bursts.size(); ++k) {
    Status s = maint::ApplyBatch(sc->program, &view, sc->bursts[k],
                                 sc->world.domains.get(), sc->fp, nullptr,
                                 log->ext_counter(), &store, log.get());
    EXPECT_TRUE(s.ok()) << "golden burst " << k << ": " << s.ToString();
    g.state[2 + k] = CanonicalState(view);
    g.ext[2 + k] = *log->ext_counter();
  }
  if (counter != nullptr) g.total_writes = counter->writes_done();
  return g;
}

Golden RunGolden(Scenario* sc, const DurabilityOptions& opts) {
  MemFs mem;
  FaultFs fs(&mem, FaultPlan{});  // crash_after_writes = -1: dry run
  return BuildState(sc, &fs, opts, &fs);
}

// One crash trial: run the workload under the fault plan, recover from
// the surviving disk image, check the recovered epoch and fingerprint
// against the golden prefixes, then finish the workload on the recovered
// timeline and check it reaches the golden FINAL state.
void RunCrashTrial(Scenario* sc, const Golden& g,
                   const DurabilityOptions& opts, int64_t crash_after,
                   bool tear, uint64_t tear_keep_bytes) {
  SCOPED_TRACE("crash_after=" + std::to_string(crash_after) +
               (tear ? " torn(keep=" + std::to_string(tear_keep_bytes) + ")"
                     : " untorn"));
  MemFs mem;
  FaultPlan plan;
  plan.crash_after_writes = crash_after;
  plan.tear_crashing_write = tear;
  plan.tear_keep_bytes = tear_keep_bytes;
  FaultFs fs(&mem, plan);

  SnapshotStore store;
  store.Publish(sc->initial);
  std::unique_ptr<DurableLog> log = Unwrap(DurableLog::Create(
      &fs, "state", sc->program, sc->initial, 1, 0, opts));

  View view = sc->initial;
  size_t committed_ok = 0;
  bool failed = false;
  for (const std::vector<maint::Update>& burst : sc->bursts) {
    Status s = maint::ApplyBatch(sc->program, &view, burst,
                                 sc->world.domains.get(), sc->fp, nullptr,
                                 log->ext_counter(), &store, log.get());
    if (!s.ok()) {
      failed = true;
      break;
    }
    ++committed_ok;
  }
  if (failed) {
    EXPECT_TRUE(fs.crashed()) << "a burst failed without a simulated crash";
    ++g_crashed_runs;
  } else {
    ++g_clean_runs;
  }

  // The restarted process: recovery runs against the underlying MemFs.
  SnapshotStore rec_store;
  RecoveryInfo info;
  std::unique_ptr<DurableLog> rec = Unwrap(DurableLog::Recover(
      &mem, "state", &sc->program, sc->world.domains.get(), sc->fp,
      &rec_store, &info, opts));
  const uint64_t r = info.recovered_epoch;
  ASSERT_GE(r, 1 + committed_ok) << "a committed burst was lost";
  ASSERT_LE(r, 1 + committed_ok + (failed ? 1 : 0))
      << "recovery invented a burst that never committed";
  if (failed && r == 2 + committed_ok) ++g_checkpoint_crashes;
  if (info.torn_tail_bytes > 0) ++g_torn_tails;
  if (info.checkpoints_skipped > 0) ++g_fallbacks;
  if (info.delta_checkpoints_composed > 0) ++g_delta_composes;

  View recovered = rec->TakeRecoveredView();
  EXPECT_EQ(CanonicalState(recovered), g.state[r])
      << "recovered state diverged from the golden prefix at epoch " << r;
  EXPECT_EQ(*rec->ext_counter(), g.ext[r]);
  EXPECT_EQ(rec_store.epoch(), r);
  EXPECT_EQ(rec->epoch(), r);

  // Crash, recover, continue == never crashed: the remaining bursts land
  // on the golden final state, epochs included.
  for (size_t k = r - 1; k < sc->bursts.size(); ++k) {
    Status s = maint::ApplyBatch(sc->program, &recovered, sc->bursts[k],
                                 sc->world.domains.get(), sc->fp, nullptr,
                                 rec->ext_counter(), &rec_store, rec.get());
    ASSERT_TRUE(s.ok()) << "post-recovery burst " << k << ": " << s.ToString();
  }
  const size_t final_epoch = sc->bursts.size() + 1;
  EXPECT_EQ(CanonicalState(recovered), g.state[final_epoch])
      << "recovered timeline diverged from the uninterrupted run";
  EXPECT_EQ(*rec->ext_counter(), g.ext[final_epoch]);
  EXPECT_EQ(rec_store.epoch(), final_epoch);
}

void RunRandomTrial(uint64_t seed, DupSemantics semantics,
                    bool deletions_allowed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Scenario sc = MakeScenario(seed, semantics, deletions_allowed);
  Rng rng(seed * 0x9E3779B9u + 71);  // fault-parameter stream
  DurabilityOptions opts;
  opts.checkpoint_every_records = static_cast<uint64_t>(rng.Int(0, 3));
  // 1 = every checkpoint full (the pre-delta regime); up to 4 stacks
  // three delta frames on each full image, so crash points land inside
  // mixed full+delta chains too.
  opts.full_checkpoint_interval = static_cast<uint64_t>(rng.Int(1, 4));
  Golden g = RunGolden(&sc, opts);
  // Crash anywhere from "right after Create" to "never" (crash point ==
  // total_writes means the workload finishes untouched).
  int64_t crash_after =
      rng.Int(g.writes_after_create, g.total_writes);
  bool tear = rng.Chance(0.5);
  uint64_t keep = static_cast<uint64_t>(rng.Int(0, 48));
  RunCrashTrial(&sc, g, opts, crash_after, tear, keep);
}

class RecoveryFault : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryFault, MixedBurstUnderDuplicateSemantics) {
  RunRandomTrial(GetParam(), DupSemantics::kDuplicate,
                 /*deletions_allowed=*/true);
}

TEST_P(RecoveryFault, InsertBurstUnderSetSemantics) {
  RunRandomTrial(GetParam() * 7919 + 13, DupSemantics::kSet,
                 /*deletions_allowed=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFault,
                         ::testing::Range(uint64_t{1}, uint64_t{61}));

// Every crash point of one workload, torn and untorn: 2 * (W + 1 -
// create_writes) full recoveries. This is the exhaustive complement to the
// sampled randomized matrix — and it guarantees the aggregate counters
// below see checkpoint-window crashes and torn tails deterministically.
TEST(RecoveryFaultSweep, EveryCrashPointRecovers) {
  Scenario sc = MakeScenario(3, DupSemantics::kDuplicate,
                             /*deletions_allowed=*/true);
  DurabilityOptions opts;
  opts.checkpoint_every_records = 2;
  Golden g = RunGolden(&sc, opts);
  ASSERT_GT(g.total_writes, g.writes_after_create);
  for (int64_t c = g.writes_after_create; c <= g.total_writes; ++c) {
    RunCrashTrial(&sc, g, opts, c, /*tear=*/false, 0);
    RunCrashTrial(&sc, g, opts, c, /*tear=*/true, /*tear_keep_bytes=*/3);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---- Bit-flip trials ------------------------------------------------------

// Frame boundaries of a scanned segment: frame i spans
// [offsets[i], offsets[i+1]).
std::vector<size_t> FrameOffsets(const durability::WalScan& scan) {
  std::vector<size_t> offsets = {0};
  for (const durability::WalRecord& r : scan.records) {
    // 8-byte header + 8-byte seq + payload.
    offsets.push_back(offsets.back() + 16 + r.payload.size());
  }
  return offsets;
}

// Flipping any byte of an INTERIOR record (one with committed records
// after it) must never yield a state beyond the corrupted record: the CRC
// catches body damage loudly; a length-field flip can at worst mimic a
// torn tail, recovering the valid golden PREFIX before the flip.
TEST(RecoveryBitFlip, InteriorWalRecordFlip) {
  Scenario sc = MakeScenario(5, DupSemantics::kDuplicate, true);
  DurabilityOptions opts;  // cadence off: one segment holds every record
  MemFs mem;
  Golden g = BuildState(&sc, &mem, opts);
  const std::string seg = "state/" + durability::WalSegmentFileName(1);
  const std::string orig = Unwrap(mem.ReadFile(seg));
  durability::WalScan scan =
      Unwrap(durability::ScanWalSegment(orig, "seg", true));
  ASSERT_GE(scan.records.size(), 3u);
  std::vector<size_t> offsets = FrameOffsets(scan);

  // The second record: it produced epoch 3, and records follow it.
  for (size_t off = offsets[1]; off < offsets[2]; ++off) {
    SCOPED_TRACE("flip at segment offset " + std::to_string(off));
    ASSERT_TRUE(mem.Corrupt(seg, off, 0x20).ok());
    RecoveryInfo info;
    Result<std::unique_ptr<DurableLog>> rec = DurableLog::Recover(
        &mem, "state", &sc.program, sc.world.domains.get(), sc.fp, nullptr,
        &info, opts);
    if (off - offsets[1] >= 4) {
      // Body or CRC damage on a complete frame: always loud.
      EXPECT_FALSE(rec.ok());
    }
    if (rec.ok()) {
      // A length-field flip that mimicked a torn tail: the recovered
      // state must be a valid golden prefix BELOW the flipped record.
      EXPECT_LE(info.recovered_epoch, 2u);
      EXPECT_EQ(CanonicalState((*rec)->TakeRecoveredView()),
                g.state[info.recovered_epoch]);
    }
    ASSERT_TRUE(mem.WriteFile(seg, orig).ok());  // undo flip + truncation
  }
}

// Flipping any byte of the FINAL record is either loud (CRC) or exactly a
// lost final burst (length-field flips are indistinguishable from tears) —
// never a corrupted state.
TEST(RecoveryBitFlip, FinalWalRecordFlip) {
  Scenario sc = MakeScenario(6, DupSemantics::kDuplicate, true);
  DurabilityOptions opts;
  MemFs mem;
  Golden g = BuildState(&sc, &mem, opts);
  const uint64_t full = sc.bursts.size() + 1;
  const std::string seg = "state/" + durability::WalSegmentFileName(1);
  const std::string orig = Unwrap(mem.ReadFile(seg));
  durability::WalScan scan =
      Unwrap(durability::ScanWalSegment(orig, "seg", true));
  std::vector<size_t> offsets = FrameOffsets(scan);
  const size_t last = scan.records.size() - 1;

  for (size_t off = offsets[last]; off < offsets[last + 1]; ++off) {
    SCOPED_TRACE("flip at segment offset " + std::to_string(off));
    ASSERT_TRUE(mem.Corrupt(seg, off, 0x20).ok());
    RecoveryInfo info;
    Result<std::unique_ptr<DurableLog>> rec = DurableLog::Recover(
        &mem, "state", &sc.program, sc.world.domains.get(), sc.fp, nullptr,
        &info, opts);
    if (rec.ok()) {
      EXPECT_EQ(info.recovered_epoch, full - 1);
      EXPECT_EQ(CanonicalState((*rec)->TakeRecoveredView()),
                g.state[full - 1]);
    }
    ASSERT_TRUE(mem.WriteFile(seg, orig).ok());
  }
}

// Flipping any byte of the newest CHECKPOINT must not lose anything at
// all: the previous retained checkpoint plus the bridging WAL segments
// reproduce the full final state.
TEST(RecoveryBitFlip, NewestCheckpointFlipFallsBackWithoutLoss) {
  Scenario sc = MakeScenario(7, DupSemantics::kDuplicate, true);
  DurabilityOptions opts;
  opts.checkpoint_every_records = 2;
  opts.full_checkpoint_interval = 1;  // every cadence fires a full image
  MemFs mem;
  Golden g = BuildState(&sc, &mem, opts);
  const uint64_t full = sc.bursts.size() + 1;

  uint64_t newest = 0;
  for (const std::string& name : Unwrap(mem.List("state"))) {
    if (Result<uint64_t> e = durability::ParseCheckpointFileName(name);
        e.ok() && *e > newest) {
      newest = *e;
    }
  }
  ASSERT_GT(newest, 1u) << "workload never hit the checkpoint cadence";
  const std::string ckpt = "state/" + durability::CheckpointFileName(newest);
  const std::string orig = Unwrap(mem.ReadFile(ckpt));

  for (size_t off = 0; off < orig.size(); off += 5) {
    SCOPED_TRACE("flip at checkpoint offset " + std::to_string(off));
    ASSERT_TRUE(mem.Corrupt(ckpt, off, 0x04).ok());
    SnapshotStore rec_store;
    RecoveryInfo info;
    std::unique_ptr<DurableLog> rec = Unwrap(DurableLog::Recover(
        &mem, "state", &sc.program, sc.world.domains.get(), sc.fp,
        &rec_store, &info, opts));
    EXPECT_GE(info.checkpoints_skipped, 1);
    EXPECT_LT(info.checkpoint_epoch, newest);
    EXPECT_EQ(info.recovered_epoch, full);
    EXPECT_EQ(CanonicalState(rec->TakeRecoveredView()), g.state[full]);
    EXPECT_EQ(rec_store.epoch(), full);
    ASSERT_TRUE(mem.WriteFile(ckpt, orig).ok());
  }
}

// Flipping any byte of ANY delta checkpoint must not lose anything
// either: every chain head that composes through the corrupt frame is
// abandoned, recovery lands on an older intact head (ultimately the full
// image at the chain's bottom) and the WAL bridges the rest. Exercises
// the all-delta newest chain the cadence below produces: initial full at
// epoch 1, then delta frames only.
TEST(RecoveryBitFlip, DeltaChainFlipFallsBackWithoutLoss) {
  Scenario sc = MakeScenario(7, DupSemantics::kDuplicate, true);
  DurabilityOptions opts;
  opts.checkpoint_every_records = 2;
  opts.full_checkpoint_interval = 4;  // cadence writes deltas only here
  MemFs mem;
  Golden g = BuildState(&sc, &mem, opts);
  const uint64_t full = sc.bursts.size() + 1;

  std::vector<uint64_t> delta_epochs;
  for (const std::string& name : Unwrap(mem.List("state"))) {
    if (Result<uint64_t> e = durability::ParseDeltaCheckpointFileName(name);
        e.ok()) {
      delta_epochs.push_back(*e);
    }
  }
  ASSERT_FALSE(delta_epochs.empty())
      << "workload never wrote a delta checkpoint";

  for (uint64_t epoch : delta_epochs) {
    const std::string dckpt =
        "state/" + durability::DeltaCheckpointFileName(epoch);
    const std::string orig = Unwrap(mem.ReadFile(dckpt));
    for (size_t off = 0; off < orig.size(); off += 5) {
      SCOPED_TRACE("flip at offset " + std::to_string(off) + " of " +
                   dckpt);
      ASSERT_TRUE(mem.Corrupt(dckpt, off, 0x04).ok());
      SnapshotStore rec_store;
      RecoveryInfo info;
      std::unique_ptr<DurableLog> rec = Unwrap(DurableLog::Recover(
          &mem, "state", &sc.program, sc.world.domains.get(), sc.fp,
          &rec_store, &info, opts));
      EXPECT_GE(info.checkpoints_skipped, 1);
      EXPECT_LT(info.checkpoint_epoch, epoch);
      EXPECT_EQ(info.recovered_epoch, full);
      EXPECT_EQ(CanonicalState(rec->TakeRecoveredView()), g.state[full]);
      EXPECT_EQ(rec_store.epoch(), full);
      ASSERT_TRUE(mem.WriteFile(dckpt, orig).ok());
    }
  }
}

// Declared last: by the time this runs, the sweep and the randomized
// matrix have finished, and every fault regime must have fired at least
// once — otherwise the suite is quietly weaker than it claims.
TEST(RecoveryFaultAggregate, EveryFaultRegimeOccurred) {
  EXPECT_GT(g_clean_runs, 0) << "no trial ran to completion";
  EXPECT_GT(g_crashed_runs, 0) << "no trial ever crashed";
  EXPECT_GT(g_torn_tails, 0) << "no trial recovered across a torn tail";
  EXPECT_GT(g_checkpoint_crashes, 0)
      << "no crash landed inside a checkpoint after the WAL commit";
  EXPECT_GT(g_delta_composes, 0)
      << "no trial recovered through a mixed full+delta checkpoint chain";
}

}  // namespace
}  // namespace mmv
