// Unit tests for the clause-plan compilation layer: the cost model's
// ordering on hand-built clauses, plan-cache lifetime (program-identity
// invalidation, adaptive recompiles), the epoch-tagged solver memo, and
// the loud-failure engine-option parsing.

#include <gtest/gtest.h>

#include <cstdlib>

#include "maintenance/batch.h"
#include "plan/plan_cache.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::ParseOrDie;
using testutil::ParseUpdate;
using testutil::TestWorld;
using testutil::Unwrap;

std::vector<int> Order(const plan::ClausePlan& plan, size_t pivot) {
  std::vector<int> out;
  for (const plan::PlanStep& s : plan.order(pivot).steps) {
    out.push_back(static_cast<int>(s.decl_pos));
  }
  return out;
}

// ---- cost model ordering --------------------------------------------------

TEST(ClausePlanTest, PivotRunsFirstThenBoundAtoms) {
  // h(X,Z) <- a(X), b(X,Y), c(Y,Z): a chain of bindings. Whatever the
  // pivot, the ordered plan must run it first and then follow the binding
  // chain (each next atom shares a variable with an already-run one).
  Program p = ParseOrDie("h(X, Z) <- true || a(X), b(X, Y), c(Y, Z).");
  const Clause& c = p.clauses()[0];
  plan::ClausePlan plan = plan::CompileClause(c, plan::PlanMode::kOrdered);
  EXPECT_TRUE(plan.reordered);
  EXPECT_EQ(Order(plan, 0), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(Order(plan, 1), (std::vector<int>{1, 0, 2}));  // a, c tie: decl
  EXPECT_EQ(Order(plan, 2), (std::vector<int>{2, 1, 0}));  // follow Y then X
}

TEST(ClausePlanTest, ConstantsOutweighBoundVariables) {
  // h(X,Y) <- p(X,Y), q(X), r(5,Y): after the pivot p both X and Y are
  // bound; r's constant plus bound Y (score 3) must beat q's bound X
  // (score 1).
  Program p = ParseOrDie("h(X, Y) <- true || p(X, Y), q(X), r(5, Y).");
  plan::ClausePlan plan =
      plan::CompileClause(p.clauses()[0], plan::PlanMode::kOrdered);
  EXPECT_EQ(Order(plan, 0), (std::vector<int>{0, 2, 1}));
}

TEST(ClausePlanTest, DeclaredModeKeepsWrittenOrder) {
  Program p = ParseOrDie("h(X, Z) <- true || a(X), b(X, Y), c(Y, Z).");
  plan::ClausePlan plan =
      plan::CompileClause(p.clauses()[0], plan::PlanMode::kDeclared);
  EXPECT_FALSE(plan.reordered);
  EXPECT_FALSE(plan.multi_probe);
  for (size_t pivot = 0; pivot < 3; ++pivot) {
    EXPECT_EQ(Order(plan, pivot), (std::vector<int>{0, 1, 2}));
  }
  // Every pivot runs the identity order, so the plan carries ONE shared
  // PivotOrder (the old layout duplicated it per pivot); ordered plans
  // still carry one per pivot.
  EXPECT_EQ(plan.orders.size(), 1u);
  EXPECT_EQ(plan::CompileClause(p.clauses()[0], plan::PlanMode::kOrdered)
                .orders.size(),
            3u);
}

TEST(ClausePlanTest, ProbePositionsCoverConstantsAndBoundSlots) {
  // h(X) <- wide(X, Y), sel(X, 7): when sel runs second, BOTH its
  // positions are probe candidates — X is bound by wide, 7 is a constant.
  Program p = ParseOrDie("h(X) <- true || wide(X, Y), sel(X, 7).");
  plan::ClausePlan plan =
      plan::CompileClause(p.clauses()[0], plan::PlanMode::kOrdered);
  const plan::PlanStep& second = plan.orders[0].steps[1];
  EXPECT_EQ(second.decl_pos, 1);
  EXPECT_EQ(second.probe_positions, (std::vector<uint16_t>{0, 1}));
  // The first step has nothing ground yet: no probe candidates.
  EXPECT_TRUE(plan.orders[0].steps[0].probe_positions.empty());
}

TEST(ClausePlanTest, ClauseVarsMatchVariablesAndRenameWithAgrees) {
  Program p =
      ParseOrDie("h(X, Z) <- X != 3 || a(X), b(X, Y), c(Y, Z).");
  const Clause& c = p.clauses()[0];
  plan::ClausePlan plan = plan::CompileClause(c, plan::PlanMode::kOrdered);
  EXPECT_EQ(plan.clause_vars, c.Variables());
  VarFactory f1, f2;
  EXPECT_EQ(c.Rename(&f1).ToString(),
            c.RenameWith(plan.clause_vars, &f2).ToString());
  EXPECT_EQ(f1.issued(), f2.issued());
}

// ---- plan cache -----------------------------------------------------------

TEST(PlanCacheTest, CachesPerClauseAndCountsHits) {
  Program p = ParseOrDie(
      "h(X) <- true || a(X), b(X).\n"
      "g(X) <- true || h(X), a(X).");
  plan::PlanCache cache(plan::PlanMode::kOrdered);
  auto plan1 = cache.PlanFor(p, p.clauses()[0]);
  auto plan1_again = cache.PlanFor(p, p.clauses()[0]);
  EXPECT_EQ(plan1.get(), plan1_again.get());
  EXPECT_EQ(cache.stats().compiles, 1);
  EXPECT_EQ(cache.stats().cache_hits, 1);
  cache.PlanFor(p, p.clauses()[1]);
  EXPECT_EQ(cache.stats().compiles, 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, FlushesWhenHandedADifferentProgram) {
  Program a = ParseOrDie("h(X) <- true || a(X), b(X).");
  Program b = a;  // copies take a fresh identity
  EXPECT_NE(a.id(), b.id());
  plan::PlanCache cache;
  cache.PlanFor(a, a.clauses()[0]);
  EXPECT_EQ(cache.size(), 1u);
  cache.PlanFor(b, b.clauses()[0]);
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.size(), 1u);  // repopulated for b
  // Moves carry the identity: no flush when the same program moves.
  Program c = std::move(b);
  cache.PlanFor(c, c.clauses()[0]);
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.stats().cache_hits, 1);
}

TEST(PlanCacheTest, AdaptiveFeedbackRefinesTieBreaks) {
  // h(X) <- a(X), b(X), c(X): after the pivot a, b and c tie statically.
  // Observed selectivity (c accepts 1% of candidates, b accepts all) must
  // flip the tie toward c once enough evidence accumulates.
  Program p = ParseOrDie("h(X) <- true || a(X), b(X), c(X).");
  const Clause& c = p.clauses()[0];
  plan::PlanCache cache(plan::PlanMode::kOrdered);
  auto before = cache.PlanFor(p, c);
  EXPECT_EQ(Order(*before, 0), (std::vector<int>{0, 1, 2}));

  cache.Feedback(c.number, {1000, 1000, 1000}, {1000, 1000, 10});
  auto after = cache.PlanFor(p, c);
  EXPECT_EQ(cache.stats().refinements, 1);
  EXPECT_EQ(Order(*after, 0), (std::vector<int>{0, 2, 1}));
  // The handed-out old plan stays alive and unchanged (immutability).
  EXPECT_EQ(Order(*before, 0), (std::vector<int>{0, 1, 2}));
  // Below the evidence threshold nothing recompiles.
  auto again = cache.PlanFor(p, c);
  EXPECT_EQ(again.get(), after.get());
}

TEST(PlanCacheTest, UnchangedRecompilesBackOff) {
  // A recompile that changes nothing must raise the clause's evidence
  // threshold — settled clauses stop paying for recompiles.
  Program p = ParseOrDie("h(X) <- true || a(X), b(X).");
  const Clause& c = p.clauses()[0];
  plan::PlanCache cache(plan::PlanMode::kOrdered);
  cache.PlanFor(p, c);
  cache.Feedback(c.number, {500, 500}, {500, 500});  // >= 256: dirty
  cache.PlanFor(p, c);  // recompile, order unchanged -> threshold x4
  EXPECT_EQ(cache.stats().refinements, 0);
  int64_t compiles = cache.stats().compiles;
  cache.Feedback(c.number, {500, 500}, {500, 500});  // 500 < 1024: settled
  cache.PlanFor(p, c);
  EXPECT_EQ(cache.stats().compiles, compiles);
}

TEST(PlanCacheTest, DeclaredModeIgnoresFeedback) {
  Program p = ParseOrDie("h(X) <- true || a(X), b(X), c(X).");
  const Clause& c = p.clauses()[0];
  plan::PlanCache cache(plan::PlanMode::kDeclared);
  auto before = cache.PlanFor(p, c);
  cache.Feedback(c.number, {1000, 1000, 1000}, {1000, 1000, 10});
  auto after = cache.PlanFor(p, c);
  EXPECT_EQ(before.get(), after.get());
  EXPECT_EQ(cache.stats().refinements, 0);
}

// ---- engine integration ---------------------------------------------------

// A shared plan cache threaded through FixpointOptions survives across
// materializations of the same program (hits on the second run) and
// flushes for a different program.
TEST(PlanCacheTest, SharedAcrossEngineRuns) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeGuardedChain(4, 4);
  plan::PlanCache shared(plan::PlanMode::kOrdered);
  FixpointOptions opts;
  opts.plan_cache = &shared;
  FixpointStats first, second;
  Unwrap(Materialize(p, w.domains.get(), opts, &first));
  int64_t compiles_after_first = shared.stats().compiles;
  EXPECT_GT(compiles_after_first, 0);
  Unwrap(Materialize(p, w.domains.get(), opts, &second));
  EXPECT_EQ(shared.stats().compiles, compiles_after_first)
      << "second run must not recompile";
  EXPECT_GT(second.plan_cache_hits, first.plan_cache_hits);
}

// A cache whose mode differs from the run's plan_mode is ignored (the
// engine falls back to a run-local cache) instead of executing plans of
// the wrong shape.
TEST(PlanCacheTest, ModeMismatchedCacheIsNotUsed) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeGuardedChain(3, 3);
  plan::PlanCache declared_cache(plan::PlanMode::kDeclared);
  FixpointOptions opts;
  opts.plan_mode = plan::PlanMode::kOrdered;
  opts.plan_cache = &declared_cache;
  Unwrap(Materialize(p, w.domains.get(), opts));
  EXPECT_EQ(declared_cache.size(), 0u);
}

// ---- epoch-tagged solver memo --------------------------------------------

TEST(SolveCacheEpochTest, SyncEpochFlushesOnlyOnChange) {
  SolveCache cache;
  EXPECT_EQ(cache.epoch(), -1);
  // first tag of an EMPTY memo: no flush
  EXPECT_FALSE(cache.SyncEpoch(/*source=*/1, /*epoch=*/3));
  EXPECT_EQ(cache.epoch(), 3);
  EXPECT_EQ(cache.epoch_source(), 1u);
  EXPECT_FALSE(cache.SyncEpoch(1, 3));  // same state: no flush

  SolverOptions opts;
  opts.cache = &cache;
  Solver solver(nullptr, opts);
  Constraint c;
  c.Add(Primitive::Eq(Term::Var(1), Term::Const(Value(5))));
  solver.Solve(c);
  EXPECT_EQ(cache.size(), 1u);

  EXPECT_TRUE(cache.SyncEpoch(1, 4));  // the external database moved
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().epoch_flushes, 1);
  EXPECT_EQ(cache.epoch(), 4);

  // A DIFFERENT evaluator reporting the same epoch value is a different
  // state: epochs are only comparable within one evaluator.
  solver.Solve(c);
  ASSERT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.SyncEpoch(/*source=*/2, /*epoch=*/4));
  EXPECT_EQ(cache.size(), 0u);

  // A memo populated through engine runs BEFORE its first tagging may
  // hold outcomes from an older external state: the first SyncEpoch must
  // drop them (one spurious flush beats serving a stale outcome).
  SolveCache untagged;
  SolverOptions opts2;
  opts2.cache = &untagged;
  Solver solver2(nullptr, opts2);
  solver2.Solve(c);
  ASSERT_EQ(untagged.size(), 1u);
  EXPECT_TRUE(untagged.SyncEpoch(1, 9));
  EXPECT_EQ(untagged.size(), 0u);
}

// Same-tick table writes (the convenience Catalog::Insert/Delete path)
// must move the evaluator's state epoch even though the clock tick stands
// still — otherwise an epoch-gated memo would survive a real external
// change.
TEST(SolveCacheEpochTest, SameTickMutationMovesTheEpoch) {
  TestWorld w = TestWorld::Make();
  int64_t before = w.domains->StateEpoch();
  w.catalog->clock().NoteMutation();
  EXPECT_NE(w.domains->StateEpoch(), before);
  int64_t after_mutation = w.domains->StateEpoch();
  w.catalog->clock().Advance();
  EXPECT_NE(w.domains->StateEpoch(), after_mutation);
  // Domain-LOCAL state (catalog-invisible, e.g. pinning a geocode) must
  // move the epoch too.
  int64_t after_advance = w.domains->StateEpoch();
  w.handles.spatial->AddAddress("key", 1.0, 2.0);
  EXPECT_NE(w.domains->StateEpoch(), after_advance);
}

// ApplyBatch keeps a caller-shared memo across batches while the domain
// clock stands still, and flushes it exactly when the clock moved.
TEST(SolveCacheEpochTest, MemoSurvivesBatchesUntilExternalChange) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(3, 4);
  // Materialize WITHOUT the shared memo: the memo's first ApplyBatch
  // tagging flushes pre-tag entries, which is exercised by the unit test
  // above; here we pin the cross-batch survival contract.
  View v = Unwrap(Materialize(p, w.domains.get(), FixpointOptions()));
  FixpointOptions opts;
  SolveCache memo;
  opts.solve_cache = &memo;
  int ext = 0;

  auto burst = [&p](int value, bool del) {
    maint::UpdateAtom atom =
        ParseUpdate("p0(X) <- X = " + std::to_string(value) + ".", &p);
    return std::vector<maint::Update>{
        del ? maint::Update::Delete(std::move(atom))
            : maint::Update::Insert(std::move(atom))};
  };

  maint::BatchStats stats;
  ASSERT_TRUE(maint::ApplyBatch(p, &v, burst(100, false), w.domains.get(),
                                opts, &stats, &ext)
                  .ok());
  EXPECT_EQ(stats.solve_epoch_flushes, 0);
  EXPECT_EQ(memo.epoch(), w.domains->StateEpoch());

  // Seed a sentinel entry so survival / flushing is directly observable.
  {
    SolverOptions sopts;
    sopts.cache = &memo;
    Solver solver(w.domains.get(), sopts);
    Constraint c;
    c.Add(Primitive::Cmp(Term::Var(900), CmpOp::kGe, Term::Const(Value(1))));
    c.Add(Primitive::Cmp(Term::Var(900), CmpOp::kLe, Term::Const(Value(9))));
    solver.Solve(c);
  }
  size_t entries_after_first = memo.size();
  ASSERT_GT(entries_after_first, 0u);

  // Second batch, same external state: the memo survives.
  ASSERT_TRUE(maint::ApplyBatch(p, &v, burst(101, false), w.domains.get(),
                                opts, &stats, &ext)
                  .ok());
  EXPECT_EQ(stats.solve_epoch_flushes, 0);
  EXPECT_EQ(memo.stats().epoch_flushes, 0);
  EXPECT_GE(memo.size(), entries_after_first);

  // The external database changes: the next batch must flush the memo.
  w.catalog->clock().Advance();
  ASSERT_TRUE(maint::ApplyBatch(p, &v, burst(100, true), w.domains.get(),
                                opts, &stats, &ext)
                  .ok());
  EXPECT_EQ(stats.solve_epoch_flushes, 1);
  EXPECT_EQ(memo.stats().epoch_flushes, 1);
  EXPECT_EQ(memo.epoch(), w.domains->StateEpoch());
}

// A plan cache threaded through ApplyBatch carries compiled plans across
// batches — including into StDel's step-3 renames.
TEST(PlanCacheTest, SharedAcrossMaintenanceBatches) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(4, 6);
  FixpointOptions opts;
  plan::PlanCache shared(opts.plan_mode);
  opts.plan_cache = &shared;
  View v = Unwrap(Materialize(p, w.domains.get(), opts));
  int ext = 0;

  auto one = [&p](const std::string& text, bool del) {
    maint::UpdateAtom atom = ParseUpdate(text, &p);
    return std::vector<maint::Update>{
        del ? maint::Update::Delete(std::move(atom))
            : maint::Update::Insert(std::move(atom))};
  };

  maint::BatchStats stats;
  ASSERT_TRUE(maint::ApplyBatch(p, &v, one("p0(X) <- X = 50.", false),
                                w.domains.get(), opts, &stats, &ext)
                  .ok());
  int64_t compiles_after_first = shared.stats().compiles;
  EXPECT_GT(compiles_after_first, 0);

  // A deletion batch: step 3 renames deriving clauses through the SAME
  // cache — plans compiled by the insert run are served as hits.
  ASSERT_TRUE(maint::ApplyBatch(p, &v, one("p0(X) <- X = 50.", true),
                                w.domains.get(), opts, &stats, &ext)
                  .ok());
  EXPECT_EQ(shared.stats().compiles, compiles_after_first);
  EXPECT_GT(stats.plan_cache_hits, 0);
}

// ---- engine option parsing ------------------------------------------------

TEST(EngineOptionsTest, ParseModesAcceptKnownAndRejectUnknown) {
  EXPECT_EQ(*ParseJoinMode("naive"), JoinMode::kNaive);
  EXPECT_EQ(*ParseJoinMode("indexed"), JoinMode::kIndexed);
  EXPECT_FALSE(ParseJoinMode("fast").ok());
  EXPECT_FALSE(ParseJoinMode("NAIVE").ok());

  EXPECT_EQ(*ParsePlanMode("declared"), plan::PlanMode::kDeclared);
  EXPECT_EQ(*ParsePlanMode("ordered"), plan::PlanMode::kOrdered);
  EXPECT_FALSE(ParsePlanMode("on").ok());
  EXPECT_FALSE(ParsePlanMode("off").ok());
}

TEST(EngineOptionsTest, EnvParsingFailsLoudlyOnUnknownValues) {
  ASSERT_EQ(setenv("MMV_JOIN_MODE", "bogus", 1), 0);
  EXPECT_FALSE(JoinModeFromEnv().ok());
  ASSERT_EQ(setenv("MMV_JOIN_MODE", "naive", 1), 0);
  EXPECT_EQ(*JoinModeFromEnv(), JoinMode::kNaive);
  ASSERT_EQ(unsetenv("MMV_JOIN_MODE"), 0);
  EXPECT_EQ(*JoinModeFromEnv(), JoinMode::kIndexed);  // default

  ASSERT_EQ(setenv("MMV_PLAN_MODE", "reordered", 1), 0);
  EXPECT_FALSE(PlanModeFromEnv().ok());
  ASSERT_EQ(setenv("MMV_PLAN_MODE", "declared", 1), 0);
  EXPECT_EQ(*PlanModeFromEnv(), plan::PlanMode::kDeclared);
  ASSERT_EQ(unsetenv("MMV_PLAN_MODE"), 0);
  EXPECT_EQ(*PlanModeFromEnv(), plan::PlanMode::kOrdered);  // default
}

}  // namespace
}  // namespace mmv
