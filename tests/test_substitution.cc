// Unit tests for substitutions and renaming.

#include <gtest/gtest.h>

#include "constraint/substitution.h"

namespace mmv {
namespace {

Term V(VarId v) { return Term::Var(v); }
Term C(int64_t c) { return Term::Const(Value(c)); }

TEST(SubstitutionTest, LookupAndApply) {
  Substitution s;
  s.Bind(0, C(7));
  s.Bind(1, V(5));
  EXPECT_TRUE(s.Contains(0));
  EXPECT_FALSE(s.Contains(9));
  EXPECT_EQ(s.Apply(V(0)), C(7));
  EXPECT_EQ(s.Apply(V(1)), V(5));
  EXPECT_EQ(s.Apply(V(2)), V(2));   // unbound: identity
  EXPECT_EQ(s.Apply(C(3)), C(3));   // constants untouched
}

TEST(SubstitutionTest, NoChasing) {
  // Single-step application: X0 -> X1 even if X1 -> c.
  Substitution s;
  s.Bind(0, V(1));
  s.Bind(1, C(9));
  EXPECT_EQ(s.Apply(V(0)), V(1));
}

TEST(SubstitutionTest, ApplyToTermVec) {
  Substitution s;
  s.Bind(0, C(1));
  TermVec ts = {V(0), V(2), C(5)};
  TermVec out = s.Apply(ts);
  EXPECT_EQ(out, (TermVec{C(1), V(2), C(5)}));
}

TEST(SubstitutionTest, ApplyToPrimitiveKinds) {
  Substitution s;
  s.Bind(0, C(4));
  Primitive cmp = Primitive::Cmp(V(0), CmpOp::kLe, V(1));
  Primitive out = s.Apply(cmp);
  EXPECT_EQ(out.lhs, C(4));
  EXPECT_EQ(out.rhs, V(1));

  Primitive in = Primitive::In(V(0), DomainCall{"d", "f", {V(0), C(2)}});
  Primitive in_out = s.Apply(in);
  EXPECT_EQ(in_out.lhs, C(4));
  EXPECT_EQ(in_out.call.args[0], C(4));
  EXPECT_EQ(in_out.call.args[1], C(2));
}

TEST(SubstitutionTest, ApplyToConstraintWithNestedBlocks) {
  Substitution s;
  s.Bind(0, C(4));
  Constraint c;
  c.Add(Primitive::Eq(V(0), V(1)));
  NotBlock outer;
  outer.prims.push_back(Primitive::Neq(V(0), C(1)));
  NotBlock inner;
  inner.prims.push_back(Primitive::Eq(V(0), C(2)));
  outer.inner.push_back(inner);
  c.AddNot(outer);

  Constraint out = s.Apply(c);
  EXPECT_EQ(out.prims()[0].lhs, C(4));
  EXPECT_EQ(out.nots()[0].prims[0].lhs, C(4));
  EXPECT_EQ(out.nots()[0].inner[0].prims[0].lhs, C(4));
}

TEST(SubstitutionTest, ApplyToFalseStaysFalse) {
  Substitution s;
  s.Bind(0, C(4));
  EXPECT_TRUE(s.Apply(Constraint::False()).is_false());
}

TEST(FreshRenamingTest, AllFreshAndDistinct) {
  VarFactory f;
  f.ReserveAbove(100);
  Substitution r = FreshRenaming({1, 2, 1, 3}, &f);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_NE(r.Apply(V(1)), V(1));
  // Fresh variables must be above the reserved mark.
  EXPECT_GT(r.Apply(V(1)).var(), 100);
  EXPECT_NE(r.Apply(V(1)), r.Apply(V(2)));
  EXPECT_NE(r.Apply(V(2)), r.Apply(V(3)));
  // Duplicated input var maps consistently.
  EXPECT_EQ(r.Apply(V(1)), r.Apply(V(1)));
}

}  // namespace
}  // namespace mmv
