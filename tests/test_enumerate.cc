// Unit tests for instance enumeration and pattern queries.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "query/query.h"
#include "test_util.h"

namespace mmv {
namespace {

using testutil::MaterializeOrDie;
using testutil::ParseOrDie;
using testutil::TestWorld;
using testutil::Unwrap;

ViewAtom MakeAtom(const std::string& pred, TermVec args, Constraint c) {
  ViewAtom a;
  a.pred = pred;
  a.args = std::move(args);
  a.constraint = std::move(c);
  a.support = Support(1);
  return a;
}

Term V(VarId v) { return Term::Var(v); }
Term C(int64_t c) { return Term::Const(Value(c)); }

TEST(EnumerateTest, GroundAtom) {
  TestWorld w = TestWorld::Make();
  Constraint c;
  c.Add(Primitive::Eq(V(0), C(3)));
  query::InstanceSet s = Unwrap(
      query::EnumerateAtom(MakeAtom("p", {V(0)}, c), w.domains.get()));
  ASSERT_EQ(s.instances.size(), 1u);
  EXPECT_EQ(s.instances.begin()->ToString(), "p(3)");
  EXPECT_TRUE(s.complete);
}

TEST(EnumerateTest, ConstantHead) {
  TestWorld w = TestWorld::Make();
  query::InstanceSet s = Unwrap(query::EnumerateAtom(
      MakeAtom("p", {Term::Const(Value("a"))}, Constraint::True()),
      w.domains.get()));
  EXPECT_EQ(s.instances.begin()->ToString(), "p(\"a\")");
}

TEST(EnumerateTest, IntegralInterval) {
  TestWorld w = TestWorld::Make();
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"arith", "between", {C(2), C(5)}}));
  c.Add(Primitive::Neq(V(0), C(3)));
  query::InstanceSet s = Unwrap(
      query::EnumerateAtom(MakeAtom("p", {V(0)}, c), w.domains.get()));
  std::set<std::string> got;
  for (const auto& i : s.instances) got.insert(i.ToString());
  EXPECT_EQ(got, (std::set<std::string>{"p(2)", "p(4)", "p(5)"}));
}

TEST(EnumerateTest, UnboundedIsIncomplete) {
  TestWorld w = TestWorld::Make();
  Constraint c;
  c.Add(Primitive::Cmp(V(0), CmpOp::kGe, C(0)));  // real interval: infinite
  query::InstanceSet s = Unwrap(
      query::EnumerateAtom(MakeAtom("p", {V(0)}, c), w.domains.get()));
  EXPECT_FALSE(s.complete);
  EXPECT_TRUE(s.instances.empty());
}

TEST(EnumerateTest, FalseAtomIsEmpty) {
  TestWorld w = TestWorld::Make();
  query::InstanceSet s = Unwrap(query::EnumerateAtom(
      MakeAtom("p", {V(0)}, Constraint::False()), w.domains.get()));
  EXPECT_TRUE(s.instances.empty());
  EXPECT_TRUE(s.complete);
}

TEST(EnumerateTest, SharedVariableAcrossPositions) {
  TestWorld w = TestWorld::Make();
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"arith", "between", {C(1), C(2)}}));
  query::InstanceSet s = Unwrap(query::EnumerateAtom(
      MakeAtom("p", {V(0), V(0)}, c), w.domains.get()));
  std::set<std::string> got;
  for (const auto& i : s.instances) got.insert(i.ToString());
  EXPECT_EQ(got, (std::set<std::string>{"p(1, 1)", "p(2, 2)"}));
}

TEST(EnumerateTest, NotBlockFiltersInstances) {
  TestWorld w = TestWorld::Make();
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"arith", "between", {C(0), C(4)}}));
  NotBlock b;
  b.prims.push_back(Primitive::Cmp(V(0), CmpOp::kGe, C(2)));
  b.prims.push_back(Primitive::Cmp(V(0), CmpOp::kLe, C(3)));
  c.AddNot(b);
  query::InstanceSet s = Unwrap(
      query::EnumerateAtom(MakeAtom("p", {V(0)}, c), w.domains.get()));
  std::set<std::string> got;
  for (const auto& i : s.instances) got.insert(i.ToString());
  EXPECT_EQ(got, (std::set<std::string>{"p(0)", "p(1)", "p(4)"}));
}

TEST(EnumerateTest, SplitsOnChainedDomainCalls) {
  // X from a table scan; Y = X's doubled value via arith:times.
  TestWorld w = TestWorld::Make();
  ASSERT_TRUE(w.catalog->CreateTable(rel::Schema{"nums", {"n"}}).ok());
  ASSERT_TRUE(w.catalog->Insert("nums", {Value(2)}).ok());
  ASSERT_TRUE(w.catalog->Insert("nums", {Value(5)}).ok());
  Constraint c;
  c.Add(Primitive::In(V(1), DomainCall{"rel", "project",
                                       {Term::Const(Value("nums")),
                                        Term::Const(Value("n"))}}));
  c.Add(Primitive::In(V(0), DomainCall{"arith", "times", {V(1), C(10)}}));
  query::InstanceSet s = Unwrap(
      query::EnumerateAtom(MakeAtom("p", {V(0)}, c), w.domains.get()));
  std::set<std::string> got;
  for (const auto& i : s.instances) got.insert(i.ToString());
  EXPECT_EQ(got, (std::set<std::string>{"p(20)", "p(50)"}));
  EXPECT_TRUE(s.complete);
}

TEST(EnumerateTest, IntegralIntervalAtDoublePrecisionEdge) {
  // Regression: DomainOf used to walk integral intervals with a double
  // cursor (`for (double v = lo; v <= hi; v += 1)`). At lo = 2^53 the
  // increment is a no-op on a double, so enumeration spun forever even
  // though IntegralCount was 3. The walk must use an int64_t cursor.
  constexpr int64_t kLo = 9007199254740992;  // 2^53
  TestWorld w = TestWorld::Make();
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"arith", "between",
                                       {C(kLo), C(kLo + 2)}}));
  c.Add(Primitive::Neq(V(0), C(kLo + 1)));  // exclusion keys on int64 too
  query::InstanceSet s = Unwrap(
      query::EnumerateAtom(MakeAtom("p", {V(0)}, c), w.domains.get()));
  std::set<std::string> got;
  for (const auto& i : s.instances) got.insert(i.ToString());
  EXPECT_EQ(got, (std::set<std::string>{"p(" + std::to_string(kLo) + ")",
                                        "p(" + std::to_string(kLo + 2) +
                                            ")"}));
  EXPECT_TRUE(s.complete);
}

TEST(EnumerateTest, ViewUnionNeverOvershootsMaxInstances) {
  // Regression: EnumerateView handed every atom the FULL max_instances
  // budget and only checked the cap between atoms, so an N-atom view could
  // do ~N times the capped work and the union overshot the limit (three
  // 7-instance atoms at cap 10 yielded 14 before truncation). Each atom
  // must get only the remaining budget.
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 6)).
    a(X) <- in(X, arith:between(10, 16)).
    a(X) <- in(X, arith:between(20, 26)).
  )");
  View v = MaterializeOrDie(p, w.domains.get());
  ASSERT_EQ(v.size(), 3u);
  query::EnumerateOptions opts;
  opts.max_instances = 10;
  query::InstanceSet s =
      Unwrap(query::EnumerateView(v, w.domains.get(), opts));
  EXPECT_EQ(s.instances.size(), 10u);  // exactly the cap, never above
  EXPECT_FALSE(s.complete);

  // An uncapped read sees all 21; the capped one is a strict prefix-like
  // subset of it.
  query::InstanceSet full = Unwrap(query::EnumerateView(v, w.domains.get()));
  EXPECT_EQ(full.instances.size(), 21u);
  EXPECT_TRUE(full.complete);
  for (const query::Instance& i : s.instances) {
    EXPECT_EQ(full.instances.count(i), 1u);
  }
}

TEST(EnumerateTest, MaxInstancesTruncates) {
  TestWorld w = TestWorld::Make();
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"arith", "between", {C(0), C(99)}}));
  query::EnumerateOptions opts;
  opts.max_instances = 10;
  query::InstanceSet s = Unwrap(query::EnumerateAtom(
      MakeAtom("p", {V(0)}, c), w.domains.get(), opts));
  EXPECT_FALSE(s.complete);
  EXPECT_LE(s.instances.size(), 10u);
}

TEST(EnumerateTest, ViewUnionDeduplicates) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 3)).
    a(X) <- in(X, arith:between(2, 5)).
  )");
  View v = MaterializeOrDie(p, w.domains.get());
  query::InstanceSet s = Unwrap(query::EnumerateView(v, w.domains.get()));
  EXPECT_EQ(s.instances.size(), 6u);  // {0..5}, overlap deduplicated
}

TEST(QueryTest, PatternWithConstants) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    e(X, Y) <- X = 1 & Y = 2.
    e(X, Y) <- X = 1 & Y = 3.
    e(X, Y) <- X = 2 & Y = 3.
  )");
  View v = MaterializeOrDie(p, w.domains.get());
  query::InstanceSet s = Unwrap(query::QueryPred(
      v, "e", {Term::Const(Value(1)), Term::Var(0)}, w.domains.get()));
  EXPECT_EQ(s.instances.size(), 2u);
}

TEST(QueryTest, RepeatedPatternVariable) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    e(X, Y) <- X = 1 & Y = 1.
    e(X, Y) <- X = 1 & Y = 2.
  )");
  View v = MaterializeOrDie(p, w.domains.get());
  query::InstanceSet s = Unwrap(query::QueryPred(
      v, "e", {Term::Var(0), Term::Var(0)}, w.domains.get()));
  ASSERT_EQ(s.instances.size(), 1u);
  EXPECT_EQ(s.instances.begin()->ToString(), "e(1, 1)");
}

TEST(QueryTest, Ask) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("e(X) <- X = 1.");
  View v = MaterializeOrDie(p, w.domains.get());
  EXPECT_TRUE(Unwrap(query::Ask(v, "e", {Value(1)}, w.domains.get())));
  EXPECT_FALSE(Unwrap(query::Ask(v, "e", {Value(2)}, w.domains.get())));
  EXPECT_FALSE(Unwrap(query::Ask(v, "zzz", {Value(1)}, w.domains.get())));
}

// A value pool dense in cross-kind collisions: mixed int/double encodings
// of the same number (1 vs 1.0), the 2^53 double-precision edge, bools,
// strings, and nested lists of all of those.
Value RandomValue(Rng* rng, int depth) {
  constexpr int64_t kEdge = 9007199254740992;  // 2^53
  switch (rng->Int(0, depth > 0 ? 8 : 6)) {
    case 0:
      return Value(rng->Int(0, 3));
    case 1:
      return Value(static_cast<double>(rng->Int(0, 3)));
    case 2:
      return Value(static_cast<double>(rng->Int(0, 3)) + 0.5);
    case 3:
      return Value(kEdge + rng->Int(0, 2));
    case 4:
      return Value(rng->Chance(0.5));
    case 5:
      return Value(std::string(1, static_cast<char>('a' + rng->Int(0, 2))));
    case 6:
      return Value();  // null
    default: {
      ValueList list;
      int n = static_cast<int>(rng->Int(0, 2));
      for (int i = 0; i < n; ++i) {
        list.push_back(RandomValue(rng, depth - 1));
      }
      return Value(std::move(list));
    }
  }
}

TEST(InstanceTest, OrderingInducesTheSameEquivalenceAsEquality) {
  // std::set<Instance> dedups on operator<'s equivalence while the rest of
  // the system compares with operator== (numeric across int/double). The
  // two must agree, or a set could hold "equal" duplicates — e.g. p(1)
  // and p(1.0) — or collapse unequal instances. Both comparators widen
  // mixed numerics identically (int-int exact, otherwise via double), so
  // the equivalences coincide; this pins it. (NaN payloads would break
  // strict-weak ordering, but no domain produces NaN Values.)
  Rng rng(101);
  std::vector<query::Instance> pool;
  for (int i = 0; i < 60; ++i) {
    query::Instance inst;
    inst.pred = rng.Chance(0.5) ? "p" : "q";
    int arity = static_cast<int>(rng.Int(0, 3));
    for (int k = 0; k < arity; ++k) {
      inst.values.push_back(RandomValue(&rng, 2));
    }
    pool.push_back(std::move(inst));
  }
  for (const query::Instance& a : pool) {
    EXPECT_FALSE(a < a);  // irreflexive
    for (const query::Instance& b : pool) {
      bool lt_equivalent = !(a < b) && !(b < a);
      EXPECT_EQ(a == b, lt_equivalent)
          << "comparator mismatch on " << a.ToString() << " vs "
          << b.ToString();
    }
  }
  // The canonical pair the audit is about: mixed numeric encodings are one
  // instance to the set.
  std::set<query::Instance> dedup;
  dedup.insert(query::Instance{"p", {Value(1)}});
  dedup.insert(query::Instance{"p", {Value(1.0)}});
  EXPECT_EQ(dedup.size(), 1u);
}

TEST(InstanceTest, OrderingAndToString) {
  query::Instance a{"p", {Value(1)}};
  query::Instance b{"p", {Value(2)}};
  query::Instance c{"q", {Value(0)}};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a.ToString(), "p(1)");
  EXPECT_EQ(a, (query::Instance{"p", {Value(1)}}));
}

}  // namespace
}  // namespace mmv
