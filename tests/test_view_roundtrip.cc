// The serialization layer under adversarial and randomized input — the
// durability subsystem trusts parser/view_io for both its checkpoint
// bodies (SerializeView/DeserializeView) and its WAL payloads
// (SerializeBurst/ParseBurst), so this file pins down two properties:
//
//  1. Malformed input NEVER crashes or silently skips: every failure is a
//     Status naming the 1-based line (or offset, for support trees) it
//     occurred on — table-driven over the realistic corruption shapes.
//  2. Round-trips are canonically lossless: on randomized programs under
//     both semantics (mixed bursts enriching the views with external
//     facts and post-deletion not-blocks), on deeply nested supports, and
//     across all six standard domains (arith / rel / tuple / text via a
//     combined mediator, faces / spatial / rel via the paper's
//     law-enforcement scenario), serialize-then-deserialize preserves the
//     canonical atom multiset, supports and depths exactly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "maintenance/batch.h"
#include "parser/view_io.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/law_enforcement.h"

namespace mmv {
namespace {

using testutil::CanonicalState;
using testutil::Instances;
using testutil::ParseOrDie;
using testutil::TestWorld;
using testutil::Unwrap;

// ---- Malformed input ------------------------------------------------------

// Every case is planted as line 3 under two valid-but-skippable lines, so
// the test also proves blank and comment lines COUNT toward the reported
// line number (an off-by-the-skipped-lines report would send the operator
// to the wrong place in a multi-thousand-line checkpoint).
struct MalformedCase {
  const char* name;
  const char* bad_line;
};

class DeserializeViewMalformed
    : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(DeserializeViewMalformed, FailsWithLineNumber) {
  Program p = ParseOrDie("a(X) <- X = 1.");
  const std::string text = std::string("a(X) <- X = 1 @ <1> # 0\n") +
                           "% a comment line\n" + GetParam().bad_line + "\n";
  Result<View> view = parser::DeserializeView(text, &p);
  ASSERT_FALSE(view.ok()) << "accepted malformed input: "
                          << GetParam().bad_line;
  EXPECT_NE(view.status().message().find("line 3:"), std::string::npos)
      << "error lacks the line number: " << view.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DeserializeViewMalformed,
    ::testing::Values(
        MalformedCase{"missing_support", "a(X) <- X = 1 # 0"},
        MalformedCase{"malformed_support", "a(X) <- X = 1 @ <x> # 0"},
        MalformedCase{"unterminated_support", "a(X) <- X = 1 @ <1, <2> # 0"},
        MalformedCase{"support_trailing_junk", "a(X) <- X = 1 @ <1> ? # 0"},
        MalformedCase{"depth_trailing_junk", "a(X) <- X = 1 @ <1> # 3x"},
        MalformedCase{"depth_sign_only", "a(X) <- X = 1 @ <1> # -"},
        MalformedCase{"depth_overflow", "a(X) <- X = 1 @ <1> # 1234567890"},
        MalformedCase{"malformed_atom", "a(X <- X = 1 @ <1> # 0"},
        MalformedCase{"garbage_line", "!!!"}),
    [](const ::testing::TestParamInfo<MalformedCase>& info) {
      return info.param.name;
    });

class ParseBurstMalformed : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(ParseBurstMalformed, FailsWithLineNumber) {
  Program p = ParseOrDie("a(X) <- X = 1.");
  const std::string text =
      std::string("ins a(X) <- X = 2.\n\n") + GetParam().bad_line + "\n";
  Result<std::vector<parser::ParsedUpdate>> burst =
      parser::ParseBurst(text, &p);
  ASSERT_FALSE(burst.ok()) << "accepted malformed input: "
                           << GetParam().bad_line;
  EXPECT_NE(burst.status().message().find("line 3:"), std::string::npos)
      << "error lacks the line number: " << burst.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseBurstMalformed,
    ::testing::Values(
        MalformedCase{"unknown_verb", "add a(X) <- X = 1."},
        MalformedCase{"missing_verb", "a(X) <- X = 1."},
        MalformedCase{"malformed_atom", "ins a(X <- X = 1."},
        MalformedCase{"empty_atom", "del ."}),
    [](const ::testing::TestParamInfo<MalformedCase>& info) {
      return info.param.name;
    });

TEST(SupportErrorTest, EveryFailureNamesItsOffset) {
  for (const char* text : {"<", "<a>", "<1> junk", "<1, <2>", "1>"}) {
    Result<Support> s = parser::ParseSupport(text);
    ASSERT_FALSE(s.ok()) << text;
    EXPECT_NE(s.status().message().find("offset"), std::string::npos)
        << "support error lacks its offset: " << s.status().ToString();
  }
}

TEST(MalformedSanity, TheValidPrefixAloneParses) {
  // The scaffolding lines the malformed tables plant their case under are
  // themselves valid — so the failures above are the bad line's fault.
  Program p = ParseOrDie("a(X) <- X = 1.");
  EXPECT_TRUE(
      parser::DeserializeView("a(X) <- X = 1 @ <1> # 0\n% c\n", &p).ok());
  EXPECT_TRUE(parser::ParseBurst("ins a(X) <- X = 2.\n\n", &p).ok());
}

// ---- Randomized round-trips ----------------------------------------------

std::vector<maint::Update> RandomBurst(Rng* rng, Program* program,
                                       const workload::RandomProgramOptions& o,
                                       bool deletions_allowed) {
  int size = static_cast<int>(rng->Int(2, 6));
  std::vector<maint::Update> burst;
  burst.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    maint::UpdateAtom atom;
    if (rng->Chance(0.35)) {
      atom.pred = "d" + std::to_string(rng->Int(0, o.derived_preds - 1));
    } else {
      atom.pred = "base" + std::to_string(rng->Int(0, o.base_preds - 1));
    }
    VarId x = program->factory()->Fresh();
    atom.args = {Term::Var(x)};
    atom.constraint.Add(Primitive::Eq(
        Term::Var(x), Term::Const(Value(rng->Int(0, o.const_pool - 1)))));
    bool is_delete = deletions_allowed && rng->Chance(0.5);
    burst.push_back(is_delete ? maint::Update::Delete(std::move(atom))
                              : maint::Update::Insert(std::move(atom)));
  }
  return burst;
}

// Serialize -> deserialize -> compare the canonical multiset; then repeat
// on the LOADED view, proving serialization is stable under its own
// re-numbering of variables.
void ExpectRoundTrips(const View& view, Program* program) {
  const std::string text = parser::SerializeView(view);
  View loaded = Unwrap(parser::DeserializeView(text, program));
  EXPECT_EQ(CanonicalState(loaded), CanonicalState(view))
      << "first-generation round-trip diverged";
  View second =
      Unwrap(parser::DeserializeView(parser::SerializeView(loaded), program));
  EXPECT_EQ(CanonicalState(second), CanonicalState(view))
      << "second-generation round-trip diverged";
}

void RunRoundTripTrial(uint64_t seed, DupSemantics semantics,
                       bool deletions_allowed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  TestWorld w = TestWorld::Make();
  Rng rng(seed);
  workload::RandomProgramOptions opts;
  opts.base_preds = 2;
  opts.derived_preds = 3;
  opts.facts_per_pred = 3;
  opts.rules_per_pred = 2;
  opts.const_pool = 5;
  if (deletions_allowed) opts.interval_fact_prob = 0;
  Program p = workload::MakeRandomProgram(&rng, opts);
  FixpointOptions fp;
  fp.semantics = semantics;
  View view = Unwrap(Materialize(p, w.domains.get(), fp));
  // A couple of bursts enrich the view with external-fact supports
  // (negative clause numbers) and, after deletions, grounded not-blocks —
  // the shapes a recovered checkpoint actually contains.
  int ext_counter = 0;
  for (int b = 0; b < 2; ++b) {
    std::vector<maint::Update> burst =
        RandomBurst(&rng, &p, opts, deletions_allowed);
    Status s = maint::ApplyBatch(p, &view, burst, w.domains.get(), fp,
                                 nullptr, &ext_counter);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  ExpectRoundTrips(view, &p);
}

class ViewRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ViewRoundTrip, MixedBurstUnderDuplicateSemantics) {
  RunRoundTripTrial(GetParam(), DupSemantics::kDuplicate,
                    /*deletions_allowed=*/true);
}

TEST_P(ViewRoundTrip, InsertBurstUnderSetSemantics) {
  RunRoundTripTrial(GetParam() * 7919 + 13, DupSemantics::kSet,
                    /*deletions_allowed=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewRoundTrip,
                         ::testing::Range(uint64_t{1}, uint64_t{31}));

TEST(ViewRoundTripShapes, DeeplyNestedSupports) {
  TestWorld w = TestWorld::Make();
  Program chain = workload::MakeChain(/*depth=*/6, /*width=*/3);
  ExpectRoundTrips(Unwrap(Materialize(chain, w.domains.get())), &chain);
  Program diamond = workload::MakeDiamond(/*depth=*/3, /*width=*/3);
  ExpectRoundTrips(Unwrap(Materialize(diamond, w.domains.get())), &diamond);
}

// ---- Domain coverage ------------------------------------------------------

TEST(ViewRoundTripDomains, ArithRelTupleTextMediator) {
  TestWorld w = TestWorld::Make();
  ASSERT_TRUE(w.catalog->CreateTable(rel::Schema{"t", {"k", "v"}}).ok());
  ASSERT_TRUE(w.catalog->Insert("t", {Value("a"), Value(1)}).ok());
  ASSERT_TRUE(w.catalog->Insert("t", {Value("b"), Value(2)}).ok());
  ASSERT_TRUE(w.handles.text->AddDocument("d1", "alpha beta").ok());
  ASSERT_TRUE(w.handles.text->AddDocument("d2", "beta gamma").ok());
  Program p = ParseOrDie(R"(
    num(X) <- in(X, arith:between(0, 3)) & X != 2.
    key(K) <- in(R, rel:scan("t")) & in(K, tuple:get(R, 0)).
    doc(D) <- in(D, text:match("beta")).
    hit(X, K, D) <- num(X) & key(K) & doc(D).
  )");
  View view = Unwrap(Materialize(p, w.domains.get()));
  ASSERT_FALSE(view.empty());
  auto instances = Instances(view, w.domains.get());
  ExpectRoundTrips(view, &p);
  View loaded = Unwrap(
      parser::DeserializeView(parser::SerializeView(view), &p));
  EXPECT_EQ(Instances(loaded, w.domains.get()), instances);
}

TEST(ViewRoundTripDomains, LawEnforcementFacesSpatialRel) {
  workload::LawEnforcementOptions opts;
  opts.num_people = 5;
  opts.num_photos = 3;
  opts.faces_per_photo = 2;
  opts.seed = 11;
  auto scenario = Unwrap(workload::MakeLawEnforcement(opts));
  View view =
      Unwrap(Materialize(scenario->mediator, scenario->domains.get()));
  ASSERT_FALSE(view.empty());
  auto instances = Instances(view, scenario->domains.get());
  ExpectRoundTrips(view, &scenario->mediator);
  View loaded = Unwrap(parser::DeserializeView(parser::SerializeView(view),
                                               &scenario->mediator));
  EXPECT_EQ(Instances(loaded, scenario->domains.get()), instances);
}

// ---- Burst round-trips (the WAL payload path) -----------------------------

TEST(BurstRoundTrip, RandomBurstsSurviveSerializeParse) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    workload::RandomProgramOptions opts;
    Program p = workload::MakeRandomProgram(&rng, opts);
    std::vector<maint::Update> burst =
        RandomBurst(&rng, &p, opts, /*deletions_allowed=*/true);
    std::vector<parser::ParsedUpdate> parsed;
    for (const maint::Update& u : burst) {
      parser::ParsedUpdate pu;
      pu.is_delete = u.kind == maint::Update::Kind::kDelete;
      pu.atom =
          parser::ParsedAtom{u.atom.pred, u.atom.args, u.atom.constraint};
      parsed.push_back(std::move(pu));
    }
    std::vector<parser::ParsedUpdate> reloaded =
        Unwrap(parser::ParseBurst(parser::SerializeBurst(parsed), &p));
    ASSERT_EQ(reloaded.size(), burst.size());
    for (size_t i = 0; i < burst.size(); ++i) {
      EXPECT_EQ(reloaded[i].is_delete,
                burst[i].kind == maint::Update::Kind::kDelete);
      EXPECT_EQ(CanonicalAtomString(reloaded[i].atom.pred,
                                    reloaded[i].atom.args,
                                    reloaded[i].atom.constraint),
                CanonicalAtomString(burst[i].atom.pred, burst[i].atom.args,
                                    burst[i].atom.constraint));
    }
  }
}

}  // namespace
}  // namespace mmv
