// Unit tests for constraint/term.

#include <gtest/gtest.h>

#include "constraint/term.h"

namespace mmv {
namespace {

TEST(TermTest, VarAndConst) {
  Term v = Term::Var(3);
  EXPECT_TRUE(v.is_var());
  EXPECT_FALSE(v.is_const());
  EXPECT_EQ(v.var(), 3);

  Term c = Term::Const(Value(7));
  EXPECT_TRUE(c.is_const());
  EXPECT_EQ(c.constant(), Value(7));
}

TEST(TermTest, DefaultIsNullConstant) {
  Term t;
  EXPECT_TRUE(t.is_const());
  EXPECT_TRUE(t.constant().is_null());
}

TEST(TermTest, Equality) {
  EXPECT_EQ(Term::Var(1), Term::Var(1));
  EXPECT_NE(Term::Var(1), Term::Var(2));
  EXPECT_EQ(Term::Const(Value("a")), Term::Const(Value("a")));
  EXPECT_NE(Term::Const(Value("a")), Term::Const(Value("b")));
  EXPECT_NE(Term::Var(1), Term::Const(Value(1)));
}

TEST(TermTest, HashDistinguishesVarFromConst) {
  EXPECT_NE(Term::Var(1).Hash(), Term::Const(Value(1)).Hash());
  EXPECT_EQ(Term::Var(5).Hash(), Term::Var(5).Hash());
}

TEST(TermTest, ToString) {
  EXPECT_EQ(Term::Var(2).ToString(), "X2");
  EXPECT_EQ(Term::Const(Value("a")).ToString(), "\"a\"");
  EXPECT_EQ(Term::Const(Value(5)).ToString(), "5");
}

TEST(VarFactoryTest, FreshIsMonotone) {
  VarFactory f;
  VarId a = f.Fresh();
  VarId b = f.Fresh();
  EXPECT_LT(a, b);
  EXPECT_EQ(f.issued(), 2);
}

TEST(VarFactoryTest, ReserveAbove) {
  VarFactory f;
  f.ReserveAbove(10);
  EXPECT_GT(f.Fresh(), 10);
  f.ReserveAbove(5);  // no-op: already above
  EXPECT_GT(f.Fresh(), 11);
}

TEST(CollectVarsTest, FirstAppearanceOrderNoDuplicates) {
  TermVec terms = {Term::Var(3), Term::Const(Value(1)), Term::Var(1),
                   Term::Var(3)};
  std::vector<VarId> vars;
  CollectVars(terms, &vars);
  EXPECT_EQ(vars, (std::vector<VarId>{3, 1}));
  // Appending preserves existing entries.
  CollectVars({Term::Var(2), Term::Var(1)}, &vars);
  EXPECT_EQ(vars, (std::vector<VarId>{3, 1, 2}));
}

}  // namespace
}  // namespace mmv
