// Property tests for the View index layer: the incrementally-maintained
// by-predicate posting lists, support hash index, and child-support index
// must agree with a linear-scan reference oracle across randomized
// Add / RemoveIf / in-place-constraint-replacement sequences.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/interner.h"
#include "common/rng.h"
#include "core/view.h"

namespace mmv {
namespace {

// The linear-scan reference implementations (the pre-index View behavior).
std::vector<size_t> ScanAtomsFor(const View& v, Symbol pred) {
  std::vector<size_t> out;
  for (size_t i = 0; i < v.atoms().size(); ++i) {
    if (v.atoms()[i].pred == pred) out.push_back(i);
  }
  return out;
}

bool ScanHasSupport(const View& v, const Support& s) {
  for (const ViewAtom& a : v.atoms()) {
    if (a.support == s) return true;
  }
  return false;
}

int64_t ScanIndexOfSupport(const View& v, const Support& s) {
  for (size_t i = 0; i < v.atoms().size(); ++i) {
    if (v.atoms()[i].support == s) return static_cast<int64_t>(i);
  }
  return -1;
}

std::vector<std::pair<size_t, size_t>> ScanParentsOfChildSupport(
    const View& v, const Support& s) {
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t i = 0; i < v.atoms().size(); ++i) {
    const Support& spt = v.atoms()[i].support;
    for (size_t k = 0; k < spt.children().size(); ++k) {
      if (spt.children()[k] == s) out.emplace_back(i, k);
    }
  }
  return out;
}

std::vector<size_t> ScanAtomsForArgValue(const View& v, Symbol pred,
                                         size_t pos, const Value& val) {
  std::vector<size_t> out;
  for (size_t i = 0; i < v.atoms().size(); ++i) {
    const ViewAtom& a = v.atoms()[i];
    if (a.pred == pred && pos < a.args.size() && a.args[pos].is_const() &&
        a.args[pos].constant() == val) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<size_t> ScanAtomsForNonConstArg(const View& v, Symbol pred,
                                            size_t pos) {
  std::vector<size_t> out;
  for (size_t i = 0; i < v.atoms().size(); ++i) {
    const ViewAtom& a = v.atoms()[i];
    if (a.pred == pred && pos < a.args.size() && !a.args[pos].is_const()) {
      out.push_back(i);
    }
  }
  return out;
}

Support RandomSupport(Rng* rng, int depth) {
  int clause = static_cast<int>(rng->Int(1, 12));
  if (depth == 0 || rng->Chance(0.5)) return Support(clause);
  std::vector<Support> children;
  int n = static_cast<int>(rng->Int(1, 2));
  for (int i = 0; i < n; ++i) children.push_back(RandomSupport(rng, depth - 1));
  return Support(clause, std::move(children));
}

// A random argument term mixing variables with constants of several kinds
// (including int/double pairs that compare — and hash — numerically equal,
// so the arg-value index's cross-kind bucketing is exercised).
Term RandomArg(Rng* rng) {
  double roll = rng->Double(0, 1);
  if (roll < 0.35) return Term::Var(static_cast<VarId>(rng->Int(0, 40)));
  if (roll < 0.65) return Term::Const(Value(rng->Int(0, 12)));
  if (roll < 0.8) {
    return Term::Const(Value(static_cast<double>(rng->Int(0, 12))));
  }
  if (roll < 0.9) return Term::Const(Value("s" + std::to_string(rng->Int(0, 3))));
  return Term::Const(Value(rng->Chance(0.5)));
}

ViewAtom RandomAtom(Rng* rng, int serial) {
  static const std::vector<Symbol> kPreds = {"p", "q", "r", "s", "t"};
  ViewAtom a;
  a.pred = rng->Pick(kPreds);
  VarId x = static_cast<VarId>(rng->Int(0, 40));
  a.args = {Term::Var(x)};
  // Varying arity: most atoms get a second (often ground) argument.
  if (rng->Chance(0.7)) a.args.push_back(RandomArg(rng));
  if (rng->Chance(0.3)) a.args[0] = RandomArg(rng);
  a.constraint.Add(
      Primitive::Eq(Term::Var(x), Term::Const(Value(rng->Int(0, 30)))));
  // A serial-numbered second child keeps most supports distinct while still
  // producing occasional duplicates for the HasSupport probe to find.
  a.support = Support(static_cast<int>(rng->Int(1, 12)),
                      {RandomSupport(rng, 2), Support(1000 + serial / 4)});
  a.depth = static_cast<int>(rng->Int(0, 5));
  return a;
}

// Every index query must match its linear-scan oracle.
void CheckAgainstOracle(const View& v, Rng* rng) {
  for (Symbol pred : {Symbol("p"), Symbol("q"), Symbol("r"), Symbol("s"),
                      Symbol("t"), Symbol("absent")}) {
    EXPECT_EQ(v.AtomsFor(pred), ScanAtomsFor(v, pred)) << pred;
  }
  // Probe with supports drawn from the view (hits) and random ones (mostly
  // misses, occasionally hash-colliding shapes).
  std::vector<Support> probes;
  for (const ViewAtom& a : v.atoms()) {
    probes.push_back(a.support);
    for (const Support& c : a.support.children()) probes.push_back(c);
    if (probes.size() > 40) break;
  }
  for (int i = 0; i < 10; ++i) probes.push_back(RandomSupport(rng, 2));
  for (const Support& s : probes) {
    EXPECT_EQ(v.HasSupport(s), ScanHasSupport(v, s)) << s.ToString();
    int64_t got = v.IndexOfSupport(s);
    if (got >= 0) {
      // Supports may legitimately repeat in a randomized view; the indexed
      // answer must point at *some* atom with that support.
      ASSERT_LT(static_cast<size_t>(got), v.atoms().size());
      EXPECT_EQ(v.atoms()[static_cast<size_t>(got)].support, s);
    } else {
      EXPECT_EQ(ScanIndexOfSupport(v, s), -1) << s.ToString();
    }
    auto indexed = v.ParentsOfChildSupport(s);
    auto scanned = ScanParentsOfChildSupport(v, s);
    std::sort(indexed.begin(), indexed.end());
    std::sort(scanned.begin(), scanned.end());
    EXPECT_EQ(indexed, scanned) << s.ToString();
  }
  // Arg-value index vs linear scan: probe every predicate/position with
  // values drawn from the atoms (hits), cross-kind numeric twins, and
  // absent values (misses).
  std::vector<Value> values;
  for (const ViewAtom& a : v.atoms()) {
    for (const Term& t : a.args) {
      if (t.is_const()) values.push_back(t.constant());
      if (values.size() > 24) break;
    }
    if (values.size() > 24) break;
  }
  values.push_back(Value(3));
  values.push_back(Value(3.0));  // must share a bucket with Value(3)
  values.push_back(Value(999));
  values.push_back(Value("absent"));
  for (Symbol pred : {Symbol("p"), Symbol("q"), Symbol("r"), Symbol("s"),
                      Symbol("t"), Symbol("absent")}) {
    for (size_t pos = 0; pos < 3; ++pos) {
      EXPECT_EQ(v.AtomsForNonConstArg(pred, pos),
                ScanAtomsForNonConstArg(v, pred, pos))
          << pred << " pos " << pos;
      for (const Value& val : values) {
        EXPECT_EQ(v.AtomsForArgValue(pred, pos, val),
                  ScanAtomsForArgValue(v, pred, pos, val))
            << pred << " pos " << pos << " val " << val.ToString();
      }
    }
  }
}

TEST(ViewIndexProperty, RandomizedMutationsAgreeWithScan) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    View v;
    int serial = 0;
    for (int step = 0; step < 200; ++step) {
      double roll = rng.Double(0, 1);
      if (roll < 0.55 || v.empty()) {
        v.Add(RandomAtom(&rng, serial++));
      } else if (roll < 0.75) {
        // In-place constraint replacement (the StDel step-2/3 mutation):
        // must not disturb any index.
        size_t i = static_cast<size_t>(
            rng.Int(0, static_cast<int64_t>(v.size()) - 1));
        ViewAtom& a = v.MutableAtom(i);
        if (rng.Chance(0.3)) {
          a.constraint = Constraint::False();
        } else {
          a.constraint.Add(Primitive::Neq(
              a.args[0], Term::Const(Value(rng.Int(0, 30)))));
        }
        a.marked = rng.Chance(0.5);
      } else if (roll < 0.9) {
        // Remove a random subset by predicate or by falseness.
        if (rng.Chance(0.5)) {
          Symbol victim = v.atoms()[static_cast<size_t>(rng.Int(
                                        0, static_cast<int64_t>(v.size()) - 1))]
                              .pred;
          v.RemoveIf([&](const ViewAtom& a) { return a.pred == victim; });
        } else {
          v.RemoveIf(
              [](const ViewAtom& a) { return a.constraint.is_false(); });
        }
      } else {
        // No-op removal: must leave every atom (and index) intact.
        size_t before = v.size();
        EXPECT_EQ(v.RemoveIf([](const ViewAtom&) { return false; }), 0u);
        EXPECT_EQ(v.size(), before);
      }
      if (step % 20 == 0) CheckAgainstOracle(v, &rng);
    }
    CheckAgainstOracle(v, &rng);
  }
}

TEST(ViewIndexProperty, MaxVarIdIsMonotoneUpperBound) {
  Rng rng(7);
  View v;
  VarId seen_max = -1;
  for (int i = 0; i < 100; ++i) {
    ViewAtom a = RandomAtom(&rng, i);
    std::vector<VarId> vars;
    CollectVars(a.args, &vars);
    for (VarId x : vars) seen_max = std::max(seen_max, x);
    for (VarId x : a.constraint.Variables()) seen_max = std::max(seen_max, x);
    v.Add(std::move(a));
    EXPECT_GE(v.MaxVarId(), seen_max);
    if (rng.Chance(0.2)) {
      v.RemoveIf([&](const ViewAtom&) { return rng.Chance(0.5); });
      // Removal never lowers the high-water mark.
      EXPECT_GE(v.MaxVarId(), seen_max);
    }
  }
}

TEST(ViewIndexProperty, TakeAtomsPreservesVariableHighWaterMark) {
  // The high-water mark is monotone over the store's WHOLE history:
  // TakeAtoms drains the atoms and indexes but must not forget the bound —
  // especially an externally noted one (NoteExternalVars) that no atom
  // mentions, which a cloning/draining layer could otherwise capture
  // against.
  Rng rng(23);
  View v;
  for (int i = 0; i < 10; ++i) v.Add(RandomAtom(&rng, i));
  VarId atom_bound = v.MaxVarId();
  ASSERT_GE(atom_bound, 0);
  VarId external_bound = atom_bound + 1000;
  v.NoteExternalVars(external_bound);
  ASSERT_EQ(v.MaxVarId(), external_bound);

  std::vector<ViewAtom> atoms = v.TakeAtoms();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.MaxVarId(), external_bound)
      << "TakeAtoms must preserve the variable high-water mark";

  // Re-adding the drained atoms keeps the external bound dominant.
  for (ViewAtom& a : atoms) v.Add(std::move(a));
  EXPECT_EQ(v.MaxVarId(), external_bound);
}

TEST(ViewIndexProperty, TakeAtomsResetsTheStore) {
  Rng rng(11);
  View v;
  for (int i = 0; i < 20; ++i) v.Add(RandomAtom(&rng, i));
  std::vector<ViewAtom> atoms = v.TakeAtoms();
  EXPECT_EQ(atoms.size(), 20u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.AtomsFor("p").empty());
  EXPECT_FALSE(v.HasSupport(atoms[0].support));
  View::IndexStats st = v.index_stats();
  EXPECT_EQ(st.postings + st.support_entries + st.child_entries, 0u);
  // The store is reusable after a take.
  for (ViewAtom& a : atoms) v.Add(std::move(a));
  EXPECT_EQ(v.size(), 20u);
  CheckAgainstOracle(v, &rng);
}

TEST(SymbolTest, InternedRoundTripAndIdentity) {
  Symbol a1("alpha");
  Symbol a2(std::string("alpha"));
  Symbol b("beta");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(a1.id(), a2.id());
  EXPECT_NE(a1, b);
  EXPECT_EQ(a1.name(), "alpha");
  EXPECT_EQ(b.name(), "beta");
  EXPECT_LT(a1, b);  // name order, not id order
  EXPECT_TRUE(Symbol().empty());
  EXPECT_EQ(Symbol().name(), "");
  EXPECT_FALSE(a1.empty());
}

}  // namespace
}  // namespace mmv
