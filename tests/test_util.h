// Shared helpers for the mmv test suites.

#ifndef MMV_TESTS_TEST_UTIL_H_
#define MMV_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "constraint/canonical.h"
#include "core/fixpoint.h"
#include "domain/registry.h"
#include "maintenance/batch.h"
#include "maintenance/recompute.h"
#include "maintenance/rewrite.h"
#include "parser/parser.h"
#include "query/enumerate.h"

namespace mmv {
namespace testutil {

/// \brief Unwraps a Result, failing the test on error.
template <typename T>
T Unwrap(Result<T> result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

/// \brief Parses a program, failing the test on error.
inline Program ParseOrDie(std::string_view text) {
  return Unwrap(parser::ParseProgram(text));
}

/// \brief Parses an update request, failing the test on error.
inline maint::UpdateAtom ParseUpdate(std::string_view text,
                                     Program* program) {
  parser::ParsedAtom atom = Unwrap(parser::ParseConstrainedAtom(text, program));
  return maint::UpdateAtom{std::move(atom.pred), std::move(atom.args),
                           std::move(atom.constraint)};
}

/// \brief A catalog + standard domains bundle for tests.
struct TestWorld {
  std::unique_ptr<rel::Catalog> catalog;
  std::unique_ptr<dom::DomainManager> domains;
  dom::StandardDomains handles;

  static TestWorld Make() {
    TestWorld w;
    w.catalog = std::make_unique<rel::Catalog>();
    w.domains = std::make_unique<dom::DomainManager>(&w.catalog->clock());
    w.handles = Unwrap(
        dom::RegisterStandardDomains(w.domains.get(), w.catalog.get()));
    return w;
  }
};

/// \brief Materializes under T_P with duplicate semantics.
inline View MaterializeOrDie(const Program& p, DcaEvaluator* eval,
                             FixpointOptions opts = {}) {
  return Unwrap(Materialize(p, eval, opts));
}

/// \brief Renders [view] as a set of instance strings (for EXPECT_EQ).
inline std::set<std::string> Instances(const View& view,
                                       DcaEvaluator* eval) {
  query::InstanceSet set = Unwrap(query::EnumerateView(view, eval));
  EXPECT_TRUE(set.complete) << "instance enumeration was incomplete";
  std::set<std::string> out;
  for (const query::Instance& i : set.instances) out.insert(i.ToString());
  return out;
}

/// \brief Same, over a pinned snapshot (reads the immutable image).
inline std::set<std::string> Instances(const SnapshotHandle& snapshot,
                                       DcaEvaluator* eval) {
  query::InstanceSet set = Unwrap(query::EnumerateView(snapshot, eval));
  EXPECT_TRUE(set.complete) << "instance enumeration was incomplete";
  std::set<std::string> out;
  for (const query::Instance& i : set.instances) out.insert(i.ToString());
  return out;
}

/// \brief The declarative oracle for an update burst: folds the burst into
/// the paper's Section 3 program transforms (deletion guards every head of
/// the requested predicate with not(psi); insertion appends the request as
/// a constrained fact) and rematerializes from scratch.
inline View FoldRecompute(const Program& program,
                          const std::vector<maint::Update>& burst,
                          DcaEvaluator* evaluator,
                          const FixpointOptions& options = {}) {
  Program rewritten = program;
  for (const maint::Update& u : burst) {
    if (u.kind == maint::Update::Kind::kDelete) {
      rewritten = maint::RewriteForDeletion(rewritten, u.atom, evaluator);
    } else {
      rewritten = maint::AppendFact(rewritten, u.atom);
    }
  }
  return Unwrap(maint::Recompute(rewritten, evaluator, options));
}

/// \brief Canonical state fingerprint of a view: the MULTISET of
/// (canonical atom, support tree, depth) triples. Variable-renaming
/// insensitive (DeserializeView legitimately re-numbers variables) but
/// support- and duplicate-exact — the equality the durability layer's
/// byte-identical-recovery contract is asserted with.
inline std::multiset<std::string> CanonicalState(const View& view) {
  std::multiset<std::string> out;
  for (const ViewAtom& a : view.atoms()) {
    out.insert(CanonicalAtomString(a.pred, a.args, a.constraint) + " @ " +
               a.support.ToString() + " # " + std::to_string(a.depth));
  }
  return out;
}

/// \brief Instance strings of one predicate only.
inline std::set<std::string> InstancesOf(const View& view,
                                         const std::string& pred,
                                         DcaEvaluator* eval) {
  std::set<std::string> out;
  for (const std::string& s : Instances(view, eval)) {
    if (s.rfind(pred + "(", 0) == 0) out.insert(s);
  }
  return out;
}

}  // namespace testutil
}  // namespace mmv

#endif  // MMV_TESTS_TEST_UTIL_H_
