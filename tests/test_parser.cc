// Unit tests for the lexer and parser.

#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "test_util.h"

namespace mmv {
namespace {

using testutil::ParseOrDie;
using testutil::Unwrap;

TEST(LexerTest, TokenKinds) {
  auto toks = Unwrap(parser::Lex(R"(p(X, 3, 2.5, "str", abc) <- X != 1.)"));
  std::vector<parser::TokKind> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  using K = parser::TokKind;
  EXPECT_EQ(kinds, (std::vector<K>{
                       K::kIdent, K::kLParen, K::kVar, K::kComma, K::kInt,
                       K::kComma, K::kFloat, K::kComma, K::kString, K::kComma,
                       K::kIdent, K::kRParen, K::kArrow, K::kVar, K::kNeq,
                       K::kInt, K::kDot, K::kEof}));
}

TEST(LexerTest, OperatorsAndComments) {
  auto toks = Unwrap(parser::Lex("<= >= < > = != & || : % comment\n<-"));
  using K = parser::TokKind;
  std::vector<K> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<K>{K::kLe, K::kGe, K::kLt, K::kGt, K::kEq,
                                   K::kNeq, K::kAmp, K::kAmp, K::kColon,
                                   K::kArrow, K::kEof}));
}

TEST(LexerTest, NegativeNumbersAndDots) {
  auto toks = Unwrap(parser::Lex("-3 -2.5 3."));
  EXPECT_EQ(toks[0].int_val, -3);
  EXPECT_DOUBLE_EQ(toks[1].float_val, -2.5);
  EXPECT_EQ(toks[2].kind, parser::TokKind::kInt);  // "3" then "."
  EXPECT_EQ(toks[3].kind, parser::TokKind::kDot);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(parser::Lex("\"unterminated").ok());
  EXPECT_FALSE(parser::Lex("p | q").ok());
  EXPECT_FALSE(parser::Lex("#").ok());
  EXPECT_FALSE(parser::Lex("!x").ok());
}

TEST(ParserTest, FactAndRule) {
  Program p = ParseOrDie(R"(
    p(X) <- X = 1.
    q(X) <- p(X) & X != 2.
  )");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.clauses()[0].number, 1);
  EXPECT_TRUE(p.clauses()[0].IsFact());
  EXPECT_EQ(p.clauses()[0].head_pred, "p");
  EXPECT_EQ(p.clauses()[1].body.size(), 1u);
  EXPECT_EQ(p.clauses()[1].body[0].pred, "p");
  EXPECT_EQ(p.clauses()[1].constraint.prims().size(), 1u);
}

TEST(ParserTest, VariablesScopedPerClause) {
  Program p = ParseOrDie(R"(
    p(X) <- X = 1.
    q(X) <- X = 2.
  )");
  VarId v0 = p.clauses()[0].head_args[0].var();
  VarId v1 = p.clauses()[1].head_args[0].var();
  EXPECT_NE(v0, v1);
  EXPECT_EQ(p.names()->NameOf(v0), "X");
  EXPECT_EQ(p.names()->NameOf(v1), "X");
}

TEST(ParserTest, SharedVariablesWithinClause) {
  Program p = ParseOrDie("r(X, Y) <- e(X, Z) & t(Z, Y).");
  const Clause& c = p.clauses()[0];
  // Z is shared between the two body atoms.
  EXPECT_EQ(c.body[0].args[1], c.body[1].args[0]);
  EXPECT_NE(c.body[0].args[0], c.body[1].args[1]);
}

TEST(ParserTest, DomainCalls) {
  Program p = ParseOrDie(
      R"(s(X) <- in(X, rel:select_eq("t", "k", "v")) & notin(X, arith:greater(3)).)");
  const Constraint& c = p.clauses()[0].constraint;
  ASSERT_EQ(c.prims().size(), 2u);
  EXPECT_EQ(c.prims()[0].kind, PrimKind::kIn);
  EXPECT_EQ(c.prims()[0].call.domain, "rel");
  EXPECT_EQ(c.prims()[0].call.function, "select_eq");
  EXPECT_EQ(c.prims()[0].call.args.size(), 3u);
  EXPECT_EQ(c.prims()[1].kind, PrimKind::kNotIn);
}

TEST(ParserTest, NotBlocks) {
  Program p = ParseOrDie("p(X) <- X >= 0 & not(X = 1 & X = 2).");
  const Constraint& c = p.clauses()[0].constraint;
  EXPECT_EQ(c.prims().size(), 1u);
  ASSERT_EQ(c.nots().size(), 1u);
  EXPECT_EQ(c.nots()[0].prims.size(), 2u);
}

TEST(ParserTest, BareIdentifiersAreStringConstants) {
  Program p = ParseOrDie("p(a, B, 1) <- B = b.");
  const Clause& c = p.clauses()[0];
  EXPECT_EQ(c.head_args[0], Term::Const(Value("a")));
  EXPECT_TRUE(c.head_args[1].is_var());
  EXPECT_EQ(c.head_args[2], Term::Const(Value(1)));
  EXPECT_EQ(c.constraint.prims()[0].rhs, Term::Const(Value("b")));
}

TEST(ParserTest, TrueFalseLiterals) {
  Program p = ParseOrDie("p(X) <- X = true & true.");
  const Clause& c = p.clauses()[0];
  EXPECT_EQ(c.constraint.prims().size(), 1u);
  EXPECT_EQ(c.constraint.prims()[0].rhs, Term::Const(Value(true)));
}

TEST(ParserTest, AnonymousVariablesAreFresh) {
  Program p = ParseOrDie("p(_, _) <- q(_).");
  const Clause& c = p.clauses()[0];
  EXPECT_NE(c.head_args[0], c.head_args[1]);
  EXPECT_NE(c.head_args[0], c.body[0].args[0]);
}

TEST(ParserTest, PaperStyleDoubleBar) {
  // '||' separates constraint from body, as in the paper.
  Program p = ParseOrDie("s(X, Y) <- X = 1 || t(X, Y).");
  EXPECT_EQ(p.clauses()[0].body.size(), 1u);
  EXPECT_EQ(p.clauses()[0].constraint.prims().size(), 1u);
}

TEST(ParserTest, ParseErrors) {
  EXPECT_FALSE(parser::ParseProgram("p(X").ok());
  EXPECT_FALSE(parser::ParseProgram("p(X) <- .").ok());
  EXPECT_FALSE(parser::ParseProgram("p(X) <- X = 1").ok());  // missing dot
  EXPECT_FALSE(parser::ParseProgram("p(X) <- in(X).").ok());
  EXPECT_FALSE(parser::ParseProgram("p(X) <- X.").ok());
  EXPECT_FALSE(parser::ParseProgram("(X) <- q(X).").ok());
}

TEST(ParserTest, ParseConstrainedAtom) {
  Program p = ParseOrDie("p(X) <- X = 1.");
  parser::ParsedAtom atom =
      Unwrap(parser::ParseConstrainedAtom("p(X) <- X != 2 & X >= 0.", &p));
  EXPECT_EQ(atom.pred, "p");
  EXPECT_EQ(atom.args.size(), 1u);
  EXPECT_EQ(atom.constraint.prims().size(), 2u);
  // Body atoms are rejected in constrained atoms.
  EXPECT_FALSE(
      parser::ParseConstrainedAtom("p(X) <- q(X).", &p).ok());
}

TEST(ParserTest, ParseSingleClause) {
  Program p;
  Clause c = Unwrap(parser::ParseClause("p(X) <- q(X) & X = 3.", &p));
  EXPECT_EQ(c.head_pred, "p");
  EXPECT_EQ(c.body.size(), 1u);
  EXPECT_EQ(p.size(), 0u);  // not added to the program
}

TEST(ParserTest, RoundTripThroughToString) {
  Program p = ParseOrDie(
      R"(s(X, Y) <- in(A, rel:scan("t")) & X != Y & not(Y = 3) || q(X), r(Y).)");
  std::string printed = p.clauses()[0].ToString(p.names());
  EXPECT_NE(printed.find("in(A, rel:scan(\"t\"))"), std::string::npos);
  EXPECT_NE(printed.find("not(Y = 3)"), std::string::npos);
  EXPECT_NE(printed.find("q(X)"), std::string::npos);
}

}  // namespace
}  // namespace mmv
