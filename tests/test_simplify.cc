// Unit tests for constraint simplification.

#include <gtest/gtest.h>

#include "constraint/simplify.h"

namespace mmv {
namespace {

Term V(VarId v) { return Term::Var(v); }
Term C(int64_t c) { return Term::Const(Value(c)); }

TEST(SimplifyTest, DissolvesEqualities) {
  // head a(X0), X0 = X1, X1 = 5  ==>  head a(5), true.
  Constraint c;
  c.Add(Primitive::Eq(V(0), V(1)));
  c.Add(Primitive::Eq(V(1), C(5)));
  SimplifiedAtom s = SimplifyAtom({V(0)}, c);
  EXPECT_EQ(s.head, (TermVec{C(5)}));
  EXPECT_TRUE(s.constraint.is_true());
}

TEST(SimplifyTest, DetectsConstantConflict) {
  Constraint c;
  c.Add(Primitive::Eq(V(0), C(1)));
  c.Add(Primitive::Eq(V(0), C(2)));
  SimplifiedAtom s = SimplifyAtom({V(0)}, c);
  EXPECT_TRUE(s.constraint.is_false());
}

TEST(SimplifyTest, EvaluatesGroundPrimitives) {
  Constraint c;
  c.Add(Primitive::Cmp(C(2), CmpOp::kLe, C(3)));  // true: dropped
  c.Add(Primitive::Neq(C(1), C(2)));              // true: dropped
  SimplifiedAtom s = SimplifyAtom({}, c);
  EXPECT_TRUE(s.constraint.is_true());

  Constraint f;
  f.Add(Primitive::Cmp(C(5), CmpOp::kLt, C(3)));  // false
  EXPECT_TRUE(SimplifyAtom({}, f).constraint.is_false());
}

TEST(SimplifyTest, SelfComparisons) {
  Constraint le;
  le.Add(Primitive::Cmp(V(0), CmpOp::kLe, V(0)));  // X <= X: true
  EXPECT_TRUE(SimplifyAtom({V(0)}, le).constraint.is_true());

  Constraint lt;
  lt.Add(Primitive::Cmp(V(0), CmpOp::kLt, V(0)));  // X < X: false
  EXPECT_TRUE(SimplifyAtom({V(0)}, lt).constraint.is_false());

  Constraint neq;
  neq.Add(Primitive::Neq(V(0), V(0)));  // X != X: false
  EXPECT_TRUE(SimplifyAtom({V(0)}, neq).constraint.is_false());
}

TEST(SimplifyTest, RewritesThroughEqualityIntoLiterals) {
  // X0 = X1 & X1 != 3  ==>  X0 != 3 (single representative).
  Constraint c;
  c.Add(Primitive::Eq(V(0), V(1)));
  c.Add(Primitive::Neq(V(1), C(3)));
  SimplifiedAtom s = SimplifyAtom({V(0)}, c);
  ASSERT_EQ(s.constraint.prims().size(), 1u);
  EXPECT_EQ(s.constraint.prims()[0].kind, PrimKind::kNeq);
  EXPECT_EQ(s.constraint.prims()[0].lhs, V(0));
}

TEST(SimplifyTest, DeduplicatesLiterals) {
  Constraint c;
  c.Add(Primitive::Neq(V(0), C(3)));
  c.Add(Primitive::Neq(V(0), C(3)));
  SimplifiedAtom s = SimplifyAtom({V(0)}, c);
  EXPECT_EQ(s.constraint.prims().size(), 1u);
}

TEST(SimplifyTest, TautologicalNotBlockDropped) {
  // not(1 = 2) == true: the block disappears.
  Constraint c;
  c.Add(Primitive::Neq(V(0), C(9)));
  NotBlock b;
  b.prims.push_back(Primitive::Eq(C(1), C(2)));
  c.AddNot(b);
  SimplifiedAtom s = SimplifyAtom({V(0)}, c);
  EXPECT_TRUE(s.constraint.nots().empty());
  EXPECT_EQ(s.constraint.prims().size(), 1u);
}

TEST(SimplifyTest, TrueBodyNotBlockMakesFalse) {
  // not(1 = 1) == false: the whole constraint is false.
  Constraint c;
  NotBlock b;
  b.prims.push_back(Primitive::Eq(C(1), C(1)));
  c.AddNot(b);
  EXPECT_TRUE(SimplifyAtom({}, c).constraint.is_false());
}

TEST(SimplifyTest, EqualityPropagatesIntoBlocks) {
  // X0 = 5 & not(X0 = 5): block body becomes ground-true -> false.
  Constraint c;
  c.Add(Primitive::Eq(V(0), C(5)));
  NotBlock b;
  b.prims.push_back(Primitive::Eq(V(0), C(5)));
  c.AddNot(b);
  EXPECT_TRUE(SimplifyAtom({V(0)}, c).constraint.is_false());

  // X0 = 5 & not(X0 = 6): block body ground-false -> dropped (true).
  Constraint c2;
  c2.Add(Primitive::Eq(V(0), C(5)));
  NotBlock b2;
  b2.prims.push_back(Primitive::Eq(V(0), C(6)));
  c2.AddNot(b2);
  SimplifiedAtom s2 = SimplifyAtom({V(0)}, c2);
  EXPECT_FALSE(s2.constraint.is_false());
  EXPECT_TRUE(s2.constraint.nots().empty());
}

TEST(SimplifyTest, NestedBlocksSimplifyRecursively) {
  // not(X0 != 9 & not(1 = 1)): inner not(true) == false makes the outer
  // body false, so the outer block is a tautology and disappears.
  Constraint c;
  NotBlock outer;
  outer.prims.push_back(Primitive::Neq(V(0), C(9)));
  NotBlock inner;
  inner.prims.push_back(Primitive::Eq(C(1), C(1)));
  outer.inner.push_back(inner);
  c.AddNot(outer);
  SimplifiedAtom s = SimplifyAtom({V(0)}, c);
  EXPECT_TRUE(s.constraint.is_true());
}

TEST(SimplifyTest, InCallArgumentsRewritten) {
  Constraint c;
  c.Add(Primitive::Eq(V(1), C(7)));
  c.Add(Primitive::In(V(0), DomainCall{"d", "f", {V(1)}}));
  SimplifiedAtom s = SimplifyAtom({V(0)}, c);
  ASSERT_EQ(s.constraint.prims().size(), 1u);
  EXPECT_EQ(s.constraint.prims()[0].call.args[0], C(7));
}

TEST(SimplifyTest, FalseInputStaysFalse) {
  EXPECT_TRUE(SimplifyAtom({}, Constraint::False()).constraint.is_false());
}

TEST(SimplifyTest, SimplifyConstraintConvenience) {
  Constraint c;
  c.Add(Primitive::Eq(C(1), C(1)));
  EXPECT_TRUE(SimplifyConstraint(c).is_true());
}

}  // namespace
}  // namespace mmv
