// Unit tests for Section 4: maintenance under external domain changes
// (MaintainedView under the T_P and W_P policies).

#include <gtest/gtest.h>

#include "maintenance/external.h"
#include "test_util.h"

namespace mmv {
namespace {

using testutil::InstancesOf;
using testutil::ParseOrDie;
using testutil::TestWorld;
using testutil::Unwrap;

class ExternalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = TestWorld::Make();
    ASSERT_TRUE(world_.catalog
                    ->CreateTable(rel::Schema{"emp", {"name", "dept"}})
                    .ok());
    ASSERT_TRUE(
        world_.catalog->Insert("emp", {Value("ann"), Value("db")}).ok());
    ASSERT_TRUE(
        world_.catalog->Insert("emp", {Value("bob"), Value("os")}).ok());
    program_ = ParseOrDie(R"(
      dbpeople(N) <-
        in(R, rel:select_eq("emp", "dept", "db")) &
        in(N, tuple:get(R, 0)).
    )");
  }

  void MutateEmp() {
    world_.catalog->clock().Advance();
    ASSERT_TRUE(
        world_.catalog->Insert("emp", {Value("cat"), Value("db")}).ok());
    ASSERT_TRUE(
        world_.catalog->Delete("emp", {Value("ann"), Value("db")}).ok());
  }

  TestWorld world_;
  Program program_;
};

TEST_F(ExternalTest, TpPolicyRecomputes) {
  maint::MaintainedView mv = Unwrap(maint::MaintainedView::Create(
      &program_, world_.domains.get(),
      maint::MaintenancePolicy::kTpRecompute));
  EXPECT_EQ(InstancesOf(mv.view(), "dbpeople", world_.domains.get()),
            (std::set<std::string>{"dbpeople(\"ann\")"}));

  MutateEmp();
  ASSERT_TRUE(mv.OnExternalChange().ok());
  EXPECT_EQ(mv.recompute_count(), 1);
  EXPECT_GT(mv.maintenance_derivations(), 0);
  EXPECT_EQ(InstancesOf(mv.view(), "dbpeople", world_.domains.get()),
            (std::set<std::string>{"dbpeople(\"cat\")"}));
}

TEST_F(ExternalTest, WpPolicyIsZeroMaintenance) {
  maint::MaintainedView mv = Unwrap(maint::MaintainedView::Create(
      &program_, world_.domains.get(),
      maint::MaintenancePolicy::kWpSyntactic));
  std::string before = mv.view().ToString();
  EXPECT_EQ(InstancesOf(mv.view(), "dbpeople", world_.domains.get()),
            (std::set<std::string>{"dbpeople(\"ann\")"}));

  MutateEmp();
  ASSERT_TRUE(mv.OnExternalChange().ok());
  // Theorem 4: no syntactic change, no derivations spent.
  EXPECT_EQ(mv.view().ToString(), before);
  EXPECT_EQ(mv.recompute_count(), 0);
  EXPECT_EQ(mv.maintenance_derivations(), 0);
  // Corollary 1: query-time instances reflect the new state.
  EXPECT_EQ(InstancesOf(mv.view(), "dbpeople", world_.domains.get()),
            (std::set<std::string>{"dbpeople(\"cat\")"}));
}

TEST_F(ExternalTest, PoliciesAgreeAtEveryTick) {
  maint::MaintainedView tp = Unwrap(maint::MaintainedView::Create(
      &program_, world_.domains.get(),
      maint::MaintenancePolicy::kTpRecompute));
  maint::MaintainedView wp = Unwrap(maint::MaintainedView::Create(
      &program_, world_.domains.get(),
      maint::MaintenancePolicy::kWpSyntactic));

  for (int round = 0; round < 3; ++round) {
    world_.catalog->clock().Advance();
    ASSERT_TRUE(world_.catalog
                    ->Insert("emp", {Value("p" + std::to_string(round)),
                                     Value("db")})
                    .ok());
    ASSERT_TRUE(tp.OnExternalChange().ok());
    ASSERT_TRUE(wp.OnExternalChange().ok());
    EXPECT_EQ(InstancesOf(tp.view(), "dbpeople", world_.domains.get()),
              InstancesOf(wp.view(), "dbpeople", world_.domains.get()))
        << "round " << round;
  }
  EXPECT_EQ(tp.recompute_count(), 3);
  EXPECT_EQ(wp.recompute_count(), 0);
}

TEST_F(ExternalTest, CollectDomainCalls) {
  std::vector<DomainCall> calls = maint::CollectDomainCalls(program_);
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0].domain, "rel");
  EXPECT_EQ(calls[1].domain, "tuple");

  // Duplicates collapse.
  Program p2 = ParseOrDie(R"(
    x(A) <- in(A, rel:scan("emp")).
    y(A) <- in(A, rel:scan("emp")).
  )");
  EXPECT_EQ(maint::CollectDomainCalls(p2).size(), 1u);
}

TEST_F(ExternalTest, DeltaDrivesRemAddSets) {
  int64_t t0 = world_.catalog->clock().now();
  MutateEmp();
  int64_t t1 = world_.catalog->clock().now();
  dom::FunctionDelta d = Unwrap(world_.domains->Delta(
      "rel", "select_eq", {Value("emp"), Value("dept"), Value("db")}, t0,
      t1));
  // ADD = {cat row}, REM = {ann row} (the paper's eqs. 6, 7).
  ASSERT_EQ(d.added.size(), 1u);
  ASSERT_EQ(d.removed.size(), 1u);
  EXPECT_EQ(d.added[0].as_list()[0], Value("cat"));
  EXPECT_EQ(d.removed[0].as_list()[0], Value("ann"));
}

}  // namespace
}  // namespace mmv
