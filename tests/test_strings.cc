// Unit tests for common/strings.

#include <gtest/gtest.h>

#include "common/strings.h"

namespace mmv {
namespace {

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\na b\r\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("xbc", "ab"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

}  // namespace
}  // namespace mmv
