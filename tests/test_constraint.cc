// Unit tests for the constraint AST.

#include <gtest/gtest.h>

#include "constraint/constraint.h"

namespace mmv {
namespace {

Term V(VarId v) { return Term::Var(v); }
Term C(int64_t c) { return Term::Const(Value(c)); }

TEST(PrimitiveTest, Factories) {
  Primitive eq = Primitive::Eq(V(0), C(1));
  EXPECT_EQ(eq.kind, PrimKind::kEq);
  Primitive neq = Primitive::Neq(V(0), C(1));
  EXPECT_EQ(neq.kind, PrimKind::kNeq);
  Primitive cmp = Primitive::Cmp(V(0), CmpOp::kLe, C(3));
  EXPECT_EQ(cmp.kind, PrimKind::kCmp);
  EXPECT_EQ(cmp.op, CmpOp::kLe);

  DomainCall call{"arith", "greater", {C(2)}};
  Primitive in = Primitive::In(V(0), call);
  EXPECT_EQ(in.kind, PrimKind::kIn);
  EXPECT_EQ(in.call.domain, "arith");
}

TEST(PrimitiveTest, NegationIsInvolutive) {
  std::vector<Primitive> prims = {
      Primitive::Eq(V(0), C(1)),
      Primitive::Neq(V(0), C(1)),
      Primitive::Cmp(V(0), CmpOp::kLt, C(3)),
      Primitive::Cmp(V(0), CmpOp::kGe, C(3)),
      Primitive::In(V(0), DomainCall{"d", "f", {}}),
      Primitive::NotInCall(V(0), DomainCall{"d", "f", {}}),
  };
  for (const Primitive& p : prims) {
    EXPECT_EQ(p.Negated().Negated(), p) << p.ToString();
    EXPECT_NE(p.Negated(), p) << p.ToString();
  }
}

TEST(PrimitiveTest, CmpNegationFlipsCorrectly) {
  EXPECT_EQ(NegateCmp(CmpOp::kLt), CmpOp::kGe);
  EXPECT_EQ(NegateCmp(CmpOp::kLe), CmpOp::kGt);
  EXPECT_EQ(NegateCmp(CmpOp::kGt), CmpOp::kLe);
  EXPECT_EQ(NegateCmp(CmpOp::kGe), CmpOp::kLt);
  EXPECT_EQ(SwapCmp(CmpOp::kLt), CmpOp::kGt);
  EXPECT_EQ(SwapCmp(CmpOp::kGe), CmpOp::kLe);
}

TEST(ConstraintTest, TrueAndFalse) {
  EXPECT_TRUE(Constraint::True().is_true());
  EXPECT_FALSE(Constraint::True().is_false());
  EXPECT_TRUE(Constraint::False().is_false());
  EXPECT_EQ(Constraint::False().ToString(), "false");
  EXPECT_EQ(Constraint::True().ToString(), "true");
}

TEST(ConstraintTest, AndWithPropagatesFalse) {
  Constraint a;
  a.Add(Primitive::Eq(V(0), C(1)));
  Constraint f = Constraint::False();
  a.AndWith(f);
  EXPECT_TRUE(a.is_false());

  Constraint b;
  b.Add(Primitive::Eq(V(0), C(1)));
  Constraint c = Constraint::And(Constraint::False(), b);
  EXPECT_TRUE(c.is_false());
}

TEST(ConstraintTest, EmptyNotBlockMakesFalse) {
  Constraint c;
  c.AddNot(NotBlock{});  // not(true) == false
  EXPECT_TRUE(c.is_false());
}

TEST(ConstraintTest, NegateRoundTrip) {
  Constraint c;
  c.Add(Primitive::Eq(V(0), C(1)));
  NotBlock inner;
  inner.prims.push_back(Primitive::Neq(V(0), C(2)));
  c.AddNot(inner);

  NotBlock negated = Constraint::Negate(c);
  EXPECT_EQ(negated.prims.size(), 1u);
  EXPECT_EQ(negated.inner.size(), 1u);
  EXPECT_EQ(negated.inner[0], inner);
}

TEST(ConstraintTest, VariablesCollectsNestedBlocks) {
  Constraint c;
  c.Add(Primitive::Eq(V(3), C(1)));
  NotBlock outer;
  outer.prims.push_back(Primitive::Neq(V(5), C(2)));
  NotBlock inner;
  inner.prims.push_back(Primitive::Cmp(V(7), CmpOp::kLe, V(3)));
  outer.inner.push_back(inner);
  c.AddNot(outer);
  EXPECT_EQ(c.Variables(), (std::vector<VarId>{3, 5, 7}));
}

TEST(ConstraintTest, LiteralCountIsRecursive) {
  Constraint c;
  c.Add(Primitive::Eq(V(0), C(1)));
  NotBlock outer;
  outer.prims.push_back(Primitive::Neq(V(0), C(2)));
  NotBlock inner;
  inner.prims.push_back(Primitive::Eq(V(1), C(3)));
  inner.prims.push_back(Primitive::Eq(V(2), C(4)));
  outer.inner.push_back(inner);
  c.AddNot(outer);
  EXPECT_EQ(c.LiteralCount(), 4u);
}

TEST(ConstraintTest, HashAndEquality) {
  Constraint a;
  a.Add(Primitive::Eq(V(0), C(1)));
  Constraint b;
  b.Add(Primitive::Eq(V(0), C(1)));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Add(Primitive::Neq(V(0), C(2)));
  EXPECT_FALSE(a == b);
}

TEST(ConstraintTest, ToStringRendersNestedNots) {
  Constraint c;
  NotBlock outer;
  outer.prims.push_back(Primitive::Eq(V(0), C(1)));
  NotBlock inner;
  inner.prims.push_back(Primitive::Eq(V(0), C(2)));
  outer.inner.push_back(inner);
  c.AddNot(outer);
  EXPECT_EQ(c.ToString(), "not(X0 = 1 & not(X0 = 2))");
}

TEST(DomainCallTest, EqualityAndToString) {
  DomainCall a{"rel", "scan", {C(1)}};
  DomainCall b{"rel", "scan", {C(1)}};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(a.ToString(), "rel:scan(1)");
  DomainCall c2{"rel", "scan", {C(2)}};
  EXPECT_FALSE(a == c2);
}

}  // namespace
}  // namespace mmv
