// Unit tests for common/status and common/result.

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"

namespace mmv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no table x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no table x");
  EXPECT_EQ(s.ToString(), "NotFound: no table x");
}

TEST(StatusTest, AllFactories) {
  EXPECT_EQ(Status::InvalidArgument("m").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("m").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("m").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("m").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("m").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeError("m").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::ResourceExhausted("m").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseMacro(int x) {
  MMV_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(UseMacro(1).ok());
  EXPECT_EQ(UseMacro(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> good = Half(10);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);
  EXPECT_TRUE(good.status().ok());

  Result<int> bad = Half(3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ValueOr(-1), -1);
  EXPECT_EQ(good.ValueOr(-1), 5);
}

Result<int> Chain(int x) {
  MMV_ASSIGN_OR_RETURN(int h, Half(x));
  return h + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  ASSERT_TRUE(Chain(4).ok());
  EXPECT_EQ(*Chain(4), 3);
  EXPECT_FALSE(Chain(5).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 7);
}

}  // namespace
}  // namespace mmv
