// Unit tests for the constrained-atom insertion algorithm (Algorithm 3).

#include <gtest/gtest.h>

#include "maintenance/insert.h"
#include "maintenance/stdel.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::Instances;
using testutil::InstancesOf;
using testutil::MaterializeOrDie;
using testutil::ParseOrDie;
using testutil::ParseUpdate;
using testutil::TestWorld;
using testutil::Unwrap;

void ExpectInsertMatchesOracle(Program& program,
                               const maint::UpdateAtom& req,
                               TestWorld& world) {
  View view = MaterializeOrDie(program, world.domains.get());
  int ext = 0;
  Status s = maint::InsertAtom(program, &view, req, world.domains.get(), {},
                               nullptr, &ext);
  ASSERT_TRUE(s.ok()) << s.ToString();
  View oracle = Unwrap(maint::RecomputeAfterInsertion(
      program, req, world.domains.get()));
  EXPECT_EQ(Instances(view, world.domains.get()),
            Instances(oracle, world.domains.get()));
}

TEST(InsertTest, BaseAtomInsertionPropagates) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1. b(X) <- a(X). c(X) <- b(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  maint::UpdateAtom req = ParseUpdate("a(X) <- X = 5.", &p);
  int ext = 0;
  maint::InsertStats stats;
  ASSERT_TRUE(maint::InsertAtom(p, &view, req, w.domains.get(), {}, &stats,
                                &ext)
                  .ok());
  EXPECT_EQ(Instances(view, w.domains.get()),
            (std::set<std::string>{"a(1)", "a(5)", "b(1)", "b(5)", "c(1)",
                                   "c(5)"}));
  EXPECT_EQ(stats.add_atoms, 1u);
  // Add + its two consequences.
  EXPECT_EQ(stats.atoms_added, 3u);
}

TEST(InsertTest, DerivedAtomInsertionDoesNotTouchSources) {
  // Paper Section 3: inserting seenwith(...) does not modify the sources;
  // inserting into a middle predicate must not change lower predicates.
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1. b(X) <- a(X). c(X) <- b(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  maint::UpdateAtom req = ParseUpdate("b(X) <- X = 9.", &p);
  int ext = 0;
  ASSERT_TRUE(
      maint::InsertAtom(p, &view, req, w.domains.get(), {}, nullptr, &ext)
          .ok());
  EXPECT_EQ(InstancesOf(view, "a", w.domains.get()).size(), 1u);
  EXPECT_EQ(InstancesOf(view, "b", w.domains.get()).size(), 2u);
  EXPECT_EQ(InstancesOf(view, "c", w.domains.get()).size(), 2u);
}

TEST(InsertTest, AlreadyCoveredIsNoOp) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- in(X, arith:between(0, 9)).");
  View view = MaterializeOrDie(p, w.domains.get());
  size_t before = view.size();
  maint::UpdateAtom req = ParseUpdate("a(X) <- X = 4.", &p);
  int ext = 0;
  maint::InsertStats stats;
  ASSERT_TRUE(maint::InsertAtom(p, &view, req, w.domains.get(), {}, &stats,
                                &ext)
                  .ok());
  EXPECT_EQ(view.size(), before);
  EXPECT_EQ(stats.add_atoms, 0u);
}

TEST(InsertTest, PartialOverlapInsertsOnlyNewInstances) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- in(X, arith:between(0, 4)). b(X) <- a(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  maint::UpdateAtom req =
      ParseUpdate("a(X) <- in(X, arith:between(3, 7)).", &p);
  int ext = 0;
  ASSERT_TRUE(
      maint::InsertAtom(p, &view, req, w.domains.get(), {}, nullptr, &ext)
          .ok());
  EXPECT_EQ(InstancesOf(view, "a", w.domains.get()).size(), 8u);
  EXPECT_EQ(InstancesOf(view, "b", w.domains.get()).size(), 8u);
}

TEST(InsertTest, JoinConsequences) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    e(X, Y) <- X = 1 & Y = 2.
    j(X, Z) <- e(X, Y) & e(Y, Z).
  )");
  View view = MaterializeOrDie(p, w.domains.get());
  EXPECT_TRUE(InstancesOf(view, "j", w.domains.get()).empty());
  // Inserting e(2,3) creates the join j(1,3) with the existing e(1,2).
  maint::UpdateAtom req = ParseUpdate("e(X, Y) <- X = 2 & Y = 3.", &p);
  int ext = 0;
  ASSERT_TRUE(
      maint::InsertAtom(p, &view, req, w.domains.get(), {}, nullptr, &ext)
          .ok());
  EXPECT_EQ(InstancesOf(view, "j", w.domains.get()),
            (std::set<std::string>{"j(1, 3)"}));
}

TEST(InsertTest, RecursiveConsequences) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeTransitiveClosure(workload::ChainEdges(3));
  View view = MaterializeOrDie(p, w.domains.get());
  ASSERT_EQ(InstancesOf(view, "path", w.domains.get()).size(), 3u);
  // Append edge (2,3): paths extend transitively.
  maint::UpdateAtom req = ParseUpdate("e(X, Y) <- X = 2 & Y = 3.", &p);
  int ext = 0;
  ASSERT_TRUE(
      maint::InsertAtom(p, &view, req, w.domains.get(), {}, nullptr, &ext)
          .ok());
  EXPECT_EQ(InstancesOf(view, "path", w.domains.get()).size(), 6u);
}

TEST(InsertTest, MatchesOracleOnIntervals) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 3)).
    b(X) <- a(X) & X != 2.
  )");
  maint::UpdateAtom req =
      ParseUpdate("a(X) <- in(X, arith:between(2, 6)).", &p);
  ExpectInsertMatchesOracle(p, req, w);
}

TEST(InsertTest, InsertThenDeleteRoundTrip) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1. b(X) <- a(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  auto before = Instances(view, w.domains.get());

  maint::UpdateAtom ins = ParseUpdate("a(X) <- X = 7.", &p);
  int ext = 0;
  ASSERT_TRUE(
      maint::InsertAtom(p, &view, ins, w.domains.get(), {}, nullptr, &ext)
          .ok());
  maint::UpdateAtom del = ParseUpdate("a(X) <- X = 7.", &p);
  ASSERT_TRUE(maint::DeleteStDel(p, &view, del, w.domains.get()).ok());
  EXPECT_EQ(Instances(view, w.domains.get()), before);
}

TEST(InsertTest, InsertIntoEmptyViewPredicate) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("b(X) <- a(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  EXPECT_TRUE(view.empty());
  maint::UpdateAtom req = ParseUpdate("a(X) <- X = 1.", &p);
  int ext = 0;
  ASSERT_TRUE(
      maint::InsertAtom(p, &view, req, w.domains.get(), {}, nullptr, &ext)
          .ok());
  EXPECT_EQ(Instances(view, w.domains.get()),
            (std::set<std::string>{"a(1)", "b(1)"}));
}

}  // namespace
}  // namespace mmv
