// Parameterized structural sweeps: closed-form size/shape predictions for
// the generated workloads, across a grid of parameters. These pin down the
// fixpoint engine's combinatorics (atom counts, support shapes, instance
// counts) far beyond the single-size unit tests.

#include <gtest/gtest.h>

#include "maintenance/batch.h"
#include "maintenance/recompute.h"
#include "maintenance/stdel.h"
#include "parser/view_io.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::Instances;
using testutil::InstancesOf;
using testutil::MaterializeOrDie;
using testutil::ParseOrDie;
using testutil::TestWorld;
using testutil::Unwrap;

using DepthWidth = std::tuple<int, int>;

class ChainSweep : public ::testing::TestWithParam<DepthWidth> {};

TEST_P(ChainSweep, AtomAndInstanceCounts) {
  auto [depth, width] = GetParam();
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(depth, width);
  FixpointStats stats;
  View v = Unwrap(Materialize(p, w.domains.get(), {}, &stats));

  // width atoms per level, depth+1 levels; single derivation each.
  EXPECT_EQ(v.size(), static_cast<size_t>(width * (depth + 1)));
  EXPECT_EQ(stats.duplicates_suppressed, 0);
  EXPECT_EQ(Instances(v, w.domains.get()).size(),
            static_cast<size_t>(width * (depth + 1)));
  // Deepest support depth = chain depth + 1 (fact leaf).
  size_t max_depth = 0;
  for (const ViewAtom& a : v.atoms()) {
    max_depth = std::max(max_depth, a.support.Depth());
  }
  EXPECT_EQ(max_depth, static_cast<size_t>(depth + 1));
}

TEST_P(ChainSweep, DeleteOneFactRemovesOneColumn) {
  auto [depth, width] = GetParam();
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(depth, width);
  View v = MaterializeOrDie(p, w.domains.get());
  maint::UpdateAtom req = workload::DeleteFactRequest(p, 0);
  maint::StDelStats stats;
  ASSERT_TRUE(
      maint::DeleteStDel(p, &v, req, w.domains.get(), {}, &stats).ok());
  // Exactly one atom per level is replaced and removed.
  EXPECT_EQ(stats.replacements, static_cast<size_t>(depth + 1));
  EXPECT_EQ(stats.removed_unsolvable, static_cast<size_t>(depth + 1));
  EXPECT_EQ(v.size(), static_cast<size_t>((width - 1) * (depth + 1)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChainSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 9),
                       ::testing::Values(1, 3, 8)));

class DiamondSweep : public ::testing::TestWithParam<DepthWidth> {};

TEST_P(DiamondSweep, DuplicatesCountProofs) {
  auto [depth, width] = GetParam();
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeDiamond(depth, width);
  View dup = MaterializeOrDie(p, w.domains.get());
  FixpointOptions set_opts;
  set_opts.semantics = DupSemantics::kSet;
  View set = Unwrap(Materialize(p, w.domains.get(), set_opts));

  // Duplicate semantics: b, l, r single-proof; m and every t-level have
  // two proofs per element.
  size_t dup_expected = static_cast<size_t>(
      width * (3 + 2 * (1 + depth)));
  EXPECT_EQ(dup.size(), dup_expected);
  // Set semantics collapses the m/t duplicates.
  size_t set_expected = static_cast<size_t>(width * (3 + (1 + depth)));
  EXPECT_EQ(set.size(), set_expected);
  // Same instances either way.
  EXPECT_EQ(Instances(dup, w.domains.get()),
            Instances(set, w.domains.get()));
}

TEST_P(DiamondSweep, DeleteOneBranchKeepsInstances) {
  auto [depth, width] = GetParam();
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeDiamond(depth, width);
  View v = MaterializeOrDie(p, w.domains.get());
  auto before_m = InstancesOf(v, "m", w.domains.get());

  // Deleting all of l removes the l atoms and the l-proof duplicates of m
  // and t, but every m/t instance survives through r.
  Program* pp = &p;
  maint::UpdateAtom req;
  req.pred = "l";
  VarId x = pp->factory()->Fresh();
  req.args = {Term::Var(x)};
  ASSERT_TRUE(maint::DeleteStDel(p, &v, req, w.domains.get()).ok());

  EXPECT_TRUE(InstancesOf(v, "l", w.domains.get()).empty());
  EXPECT_EQ(InstancesOf(v, "m", w.domains.get()), before_m);
  // Exactly the l-derived atoms disappeared: width * (1 + 1 + depth).
  size_t expected_removed = static_cast<size_t>(width * (2 + depth));
  EXPECT_EQ(v.size(),
            static_cast<size_t>(width * (3 + 2 * (1 + depth))) -
                expected_removed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DiamondSweep,
    ::testing::Combine(::testing::Values(0, 1, 3, 6),
                       ::testing::Values(1, 2, 5)));

class TcSweep : public ::testing::TestWithParam<int> {};

TEST_P(TcSweep, PathCountsOnChains) {
  int n = GetParam();
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeTransitiveClosure(workload::ChainEdges(n));
  View v = MaterializeOrDie(p, w.domains.get());
  // Paths on a chain of n nodes: n*(n-1)/2.
  EXPECT_EQ(InstancesOf(v, "path", w.domains.get()).size(),
            static_cast<size_t>(n * (n - 1) / 2));
  // On a chain every path has exactly one derivation.
  EXPECT_EQ(v.AtomsFor("path").size(),
            static_cast<size_t>(n * (n - 1) / 2));
}

TEST_P(TcSweep, CutMiddleEdge) {
  int n = GetParam();
  if (n < 4) GTEST_SKIP();
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeTransitiveClosure(workload::ChainEdges(n));
  View v = MaterializeOrDie(p, w.domains.get());
  int cut = n / 2;
  maint::UpdateAtom req;
  VarId x = p.factory()->Fresh(), y = p.factory()->Fresh();
  req.pred = "e";
  req.args = {Term::Var(x), Term::Var(y)};
  req.constraint.Add(Primitive::Eq(
      Term::Var(x), Term::Const(Value(static_cast<int64_t>(cut)))));
  req.constraint.Add(Primitive::Eq(
      Term::Var(y), Term::Const(Value(static_cast<int64_t>(cut + 1)))));
  ASSERT_TRUE(maint::DeleteStDel(p, &v, req, w.domains.get()).ok());

  // Remaining paths: within [0..cut] and within [cut+1..n-1].
  int left = cut + 1, right = n - cut - 1;
  size_t expected = static_cast<size_t>(left * (left - 1) / 2 +
                                        right * (right - 1) / 2);
  EXPECT_EQ(InstancesOf(v, "path", w.domains.get()).size(), expected);

  View oracle = Unwrap(
      maint::RecomputeAfterDeletion(p, req, w.domains.get()));
  EXPECT_EQ(Instances(v, w.domains.get()),
            Instances(oracle, w.domains.get()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcSweep, ::testing::Values(2, 4, 6, 9));

class IntervalSweep : public ::testing::TestWithParam<DepthWidth> {};

TEST_P(IntervalSweep, AtomCountIndependentOfSpan) {
  auto [depth, span] = GetParam();
  TestWorld w = TestWorld::Make();
  const int width = 3;
  Program p = workload::MakeIntervalChain(depth, width, span);
  View v = MaterializeOrDie(p, w.domains.get());
  EXPECT_EQ(v.size(), static_cast<size_t>(width * (depth + 1)));
  // Instance count: each level knocks out one point of the first range
  // (if within span), all ranges have span points.
  auto insts = Instances(v, w.domains.get());
  EXPECT_GE(insts.size(), static_cast<size_t>(width * span));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IntervalSweep,
    ::testing::Combine(::testing::Values(1, 3), ::testing::Values(5, 20)));

// ---------------------------------------------------------------------------
// Mixed delete/insert burst sweeps: on every parameter point the pipeline,
// the sequential replay and the declarative fold (program rewrites +
// recompute, testutil::FoldRecompute) must agree at the instance level.

void ExpectThreeWayAgreement(const Program& p, const View& initial,
                             const std::vector<maint::Update>& burst,
                             DcaEvaluator* eval) {
  View batch = initial;
  maint::BatchStats stats;
  ASSERT_TRUE(maint::ApplyBatch(p, &batch, burst, eval, {}, &stats).ok());
  View seq = initial;
  ASSERT_TRUE(maint::ApplyUpdatesSequential(p, &seq, burst, eval).ok());
  View oracle = testutil::FoldRecompute(p, burst, eval);
  EXPECT_EQ(Instances(batch, eval), Instances(seq, eval));
  EXPECT_EQ(Instances(batch, eval), Instances(oracle, eval));
}

class BurstSweep : public ::testing::TestWithParam<DepthWidth> {};

TEST_P(BurstSweep, ArithChainMixedBurst) {
  auto [depth, width] = GetParam();
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(depth, width);
  View v = MaterializeOrDie(p, w.domains.get());

  std::vector<maint::Update> burst;
  // Delete the lower half of the facts, insert fresh ones, sprinkle
  // duplicates so the planner has something to coalesce.
  for (int k = 0; k < width / 2 + 1; ++k) {
    burst.push_back(maint::Update::Delete(
        testutil::ParseUpdate("p0(X) <- X = " + std::to_string(k) + ".", &p)));
  }
  burst.push_back(maint::Update::Insert(testutil::ParseUpdate(
      "p0(X) <- X = " + std::to_string(width + 1) + ".", &p)));
  burst.push_back(maint::Update::Insert(testutil::ParseUpdate(
      "p0(X) <- X = " + std::to_string(width + 1) + ".", &p)));  // dup
  burst.push_back(maint::Update::Delete(
      testutil::ParseUpdate("p0(X) <- X = 0.", &p)));  // re-delete
  ExpectThreeWayAgreement(p, v, burst, w.domains.get());
}

TEST_P(BurstSweep, ArithIntervalMixedBurst) {
  auto [depth, span] = GetParam();
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeIntervalChain(depth, /*width=*/2, span);
  View v = MaterializeOrDie(p, w.domains.get());

  std::vector<maint::Update> burst = {
      maint::Update::Delete(testutil::ParseUpdate("b0(X) <- X = 1.", &p)),
      maint::Update::Insert(testutil::ParseUpdate(
          "b0(X) <- in(X, arith:between(200, 202)).", &p)),
      maint::Update::Delete(testutil::ParseUpdate("b0(X) <- X = 2.", &p)),
  };
  ExpectThreeWayAgreement(p, v, burst, w.domains.get());
}

TEST_P(BurstSweep, FullyCancelingBurstLeavesViewByteIdentical) {
  auto [depth, width] = GetParam();
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(depth, width);
  // Side predicate touched by no rule: delete+re-insert pairs of its
  // PRESENT facts may legally cancel in the planner (for rule participants
  // like p0 the pair must execute — see the resurrection regression in
  // test_batch.cc).
  for (int c = 0; c < 2; ++c) {
    p.AddClause(Unwrap(parser::ParseClause(
        "side(X) <- X = " + std::to_string(c) + ".", &p)));
  }
  View v = MaterializeOrDie(p, w.domains.get());
  std::string before = parser::SerializeView(v);

  // delete+re-insert of present side facts and insert+delete of absent
  // chain facts: the planner reduces every pair to a single no-op update.
  std::vector<maint::Update> burst;
  for (int c = 0; c < 2; ++c) {
    burst.push_back(maint::Update::Delete(testutil::ParseUpdate(
        "side(X) <- X = " + std::to_string(c) + ".", &p)));
    burst.push_back(maint::Update::Insert(testutil::ParseUpdate(
        "side(X) <- X = " + std::to_string(c) + ".", &p)));
  }
  burst.push_back(maint::Update::Insert(testutil::ParseUpdate(
      "p0(X) <- X = " + std::to_string(width + 7) + ".", &p)));
  burst.push_back(maint::Update::Delete(testutil::ParseUpdate(
      "p0(X) <- X = " + std::to_string(width + 7) + ".", &p)));

  maint::BatchStats stats;
  ASSERT_TRUE(
      maint::ApplyBatch(p, &v, burst, w.domains.get(), {}, &stats).ok());
  EXPECT_EQ(parser::SerializeView(v), before);
  // Half of the burst was coalesced away, the rest were provable no-ops.
  EXPECT_EQ(stats.coalesced_away, burst.size() / 2);
  EXPECT_EQ(stats.replacements, 0u);
  EXPECT_EQ(stats.add_atoms, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BurstSweep,
    ::testing::Combine(::testing::Values(1, 3, 6), ::testing::Values(2, 5)));

TEST(DomainBurstTest, RelDomainMixedBurst) {
  TestWorld w = TestWorld::Make();
  ASSERT_TRUE(
      w.catalog->CreateTable(rel::Schema{"orders", {"id", "region"}}).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(w.catalog
                    ->Insert("orders", {Value(i), Value(i % 2 ? "east"
                                                             : "west")})
                    .ok());
  }
  Program p = ParseOrDie(R"(
    east(I) <- in(R, rel:select_eq("orders", "region", "east")) &
               in(I, tuple:get(R, 0)).
    flagged(I) <- east(I).
  )");
  View v = MaterializeOrDie(p, w.domains.get());

  std::vector<maint::Update> burst = {
      maint::Update::Delete(testutil::ParseUpdate("east(I) <- I = 1.", &p)),
      maint::Update::Insert(testutil::ParseUpdate("east(I) <- I = 99.", &p)),
      maint::Update::Delete(testutil::ParseUpdate("east(I) <- I = 1.", &p)),
      maint::Update::Delete(
          testutil::ParseUpdate("flagged(I) <- I = 3.", &p)),
  };
  ExpectThreeWayAgreement(p, v, burst, w.domains.get());
}

TEST(DomainBurstTest, TextDomainMixedBurst) {
  TestWorld w = TestWorld::Make();
  ASSERT_TRUE(w.handles.text->AddDocument("d1", "alpha beta").ok());
  ASSERT_TRUE(w.handles.text->AddDocument("d2", "beta gamma").ok());
  ASSERT_TRUE(w.handles.text->AddDocument("d3", "beta delta").ok());
  Program p = ParseOrDie(R"(
    has_beta(D) <- in(D, text:match("beta")).
    pair(D, E) <- has_beta(D) & has_beta(E) & D != E.
  )");
  View v = MaterializeOrDie(p, w.domains.get());

  std::vector<maint::Update> burst = {
      maint::Update::Delete(
          testutil::ParseUpdate("has_beta(D) <- D = \"d1\".", &p)),
      maint::Update::Insert(
          testutil::ParseUpdate("has_beta(D) <- D = \"d9\".", &p)),
      maint::Update::Insert(
          testutil::ParseUpdate("has_beta(D) <- D = \"d9\".", &p)),  // dup
  };
  ExpectThreeWayAgreement(p, v, burst, w.domains.get());
}

}  // namespace
}  // namespace mmv
