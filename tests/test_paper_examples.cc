// End-to-end reproductions of the paper's worked examples (Examples 4-8).

#include <gtest/gtest.h>

#include "maintenance/dred_constrained.h"
#include "maintenance/insert.h"
#include "maintenance/stdel.h"
#include "test_util.h"

namespace mmv {
namespace {

using testutil::Instances;
using testutil::InstancesOf;
using testutil::MaterializeOrDie;
using testutil::ParseOrDie;
using testutil::ParseUpdate;
using testutil::TestWorld;
using testutil::Unwrap;

// The constrained database of Examples 4 and 5, bounded to integers so
// instance sets are finitely enumerable:
//   1. A(X) <- 0 <= X <= 3
//   2. A(X) <- B(X)
//   3. B(X) <- 0 <= X <= 5
//   4. C(X) <- A(X)
constexpr const char* kExample45 = R"(
a(X) <- in(X, arith:between(0, 3)).
a(X) <- b(X).
b(X) <- in(X, arith:between(0, 5)).
c(X) <- a(X).
)";

class Example45Test : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = TestWorld::Make();
    program_ = ParseOrDie(kExample45);
  }
  TestWorld world_;
  Program program_;
};

TEST_F(Example45Test, MaterializedViewHasFiveAtomsWithPaperSupports) {
  View view = MaterializeOrDie(program_, world_.domains.get());
  ASSERT_EQ(view.size(), 5u);
  // Supports match the paper's table: <1>, <2,<3>>, <3>, <4,<1>>,
  // <4,<2,<3>>>.
  std::set<std::string> supports;
  for (const ViewAtom& a : view.atoms()) {
    supports.insert(a.support.ToString());
  }
  EXPECT_EQ(supports, (std::set<std::string>{
                          "<1>", "<2, <3>>", "<3>", "<4, <1>>",
                          "<4, <2, <3>>>"}));
}

TEST_F(Example45Test, InstanceSemantics) {
  View view = MaterializeOrDie(program_, world_.domains.get());
  // [A] = [0,3] u [0,5] = {0..5}; [B] = {0..5}; [C] = [A].
  EXPECT_EQ(InstancesOf(view, "b", world_.domains.get()).size(), 6u);
  EXPECT_EQ(InstancesOf(view, "a", world_.domains.get()).size(), 6u);
  EXPECT_EQ(InstancesOf(view, "c", world_.domains.get()).size(), 6u);
}

TEST_F(Example45Test, StDelMatchesDeclarativeSemantics) {
  View view = MaterializeOrDie(program_, world_.domains.get());
  maint::UpdateAtom request = ParseUpdate("b(X) <- X = 5.", &program_);

  View stdel_view = view;
  maint::StDelStats stats;
  Status s = maint::DeleteStDel(program_, &stdel_view, request,
                                world_.domains.get(), {}, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();

  View oracle = Unwrap(maint::RecomputeAfterDeletion(
      program_, request, world_.domains.get()));

  EXPECT_EQ(Instances(stdel_view, world_.domains.get()),
            Instances(oracle, world_.domains.get()));
  // B loses 5; A keeps {0..4} (1st clause contributes 0..3, B contributes
  // 0..4); C mirrors A.
  EXPECT_EQ(InstancesOf(stdel_view, "b", world_.domains.get()).size(), 5u);
  EXPECT_EQ(InstancesOf(stdel_view, "a", world_.domains.get()).size(), 5u);
  EXPECT_EQ(InstancesOf(stdel_view, "c", world_.domains.get()).size(), 5u);
  // Exactly three replacements: B itself, A-via-B, C-via-A-via-B (paper's
  // Example 5 walk-through).
  EXPECT_EQ(stats.replacements, 3u);
  // No rederivation: nothing is ever recomputed by StDel.
}

TEST_F(Example45Test, StDelDeletePointCoveredByOtherProof) {
  // Deleting B(X) <- X = 2 must NOT remove 2 from A or C: A(X) <- X <= 3
  // proves 2 independently (the paper's remark in Example 4).
  View view = MaterializeOrDie(program_, world_.domains.get());
  maint::UpdateAtom request = ParseUpdate("b(X) <- X = 2.", &program_);
  Status s = maint::DeleteStDel(program_, &view, request,
                                world_.domains.get());
  ASSERT_TRUE(s.ok()) << s.ToString();

  auto b = InstancesOf(view, "b", world_.domains.get());
  EXPECT_EQ(b.count("b(2)"), 0u);
  auto a = InstancesOf(view, "a", world_.domains.get());
  EXPECT_EQ(a.count("a(2)"), 1u);
  auto c = InstancesOf(view, "c", world_.domains.get());
  EXPECT_EQ(c.count("c(2)"), 1u);
}

TEST_F(Example45Test, ExtendedDRedMatchesDeclarativeSemantics) {
  FixpointOptions set_opts;
  set_opts.semantics = DupSemantics::kSet;
  View view = Unwrap(Materialize(program_, world_.domains.get(), set_opts));
  maint::UpdateAtom request = ParseUpdate("b(X) <- X = 5.", &program_);

  maint::DRedStats stats;
  View dred_view = Unwrap(maint::DeleteDRed(
      program_, view, request, world_.domains.get(), set_opts, &stats));
  View oracle = Unwrap(maint::RecomputeAfterDeletion(
      program_, request, world_.domains.get(), set_opts));

  EXPECT_EQ(Instances(dred_view, world_.domains.get()),
            Instances(oracle, world_.domains.get()));
  // P_OUT reaches B, A and C (the paper's Example 4 P_OUT).
  EXPECT_GE(stats.pout_atoms, 3u);
  // DRed pays a rederivation phase.
  EXPECT_GT(stats.rederive_derivations, 0);
}

// Example 6: recursive views.
//   1. P(X,Y) <- X=a & Y=b      2. P(X,Y) <- X=a & Y=c
//   3. P(X,Y) <- X=c & Y=d      4. A(X,Y) <- P(X,Y)
//   5. A(X,Y) <- P(X,Z), A(Z,Y)
constexpr const char* kExample6 = R"(
p(X, Y) <- X = "a" & Y = "b".
p(X, Y) <- X = "a" & Y = "c".
p(X, Y) <- X = "c" & Y = "d".
a(X, Y) <- p(X, Y).
a(X, Y) <- p(X, Z) & a(Z, Y).
)";

TEST(Example6Test, RecursiveViewAndStDel) {
  TestWorld world = TestWorld::Make();
  Program program = ParseOrDie(kExample6);
  View view = MaterializeOrDie(program, world.domains.get());

  // The paper's view: 3 P atoms, 3 A atoms from rule 4, plus the derived
  // A(a, d) via <5, <2>, <4, <3>>> — 7 atoms total.
  EXPECT_EQ(view.size(), 7u);
  auto a0 = InstancesOf(view, "a", world.domains.get());
  EXPECT_EQ(a0, (std::set<std::string>{"a(\"a\", \"b\")", "a(\"a\", \"c\")",
                                       "a(\"c\", \"d\")", "a(\"a\", \"d\")"}));

  // Delete P(X,Y) <- X=c & Y=d. Expected final instances: P loses (c,d);
  // A loses (c,d) and (a,d).
  maint::UpdateAtom request =
      ParseUpdate("p(X, Y) <- X = \"c\" & Y = \"d\".", &program);
  Status s =
      maint::DeleteStDel(program, &view, request, world.domains.get());
  ASSERT_TRUE(s.ok()) << s.ToString();

  EXPECT_EQ(InstancesOf(view, "p", world.domains.get()),
            (std::set<std::string>{"p(\"a\", \"b\")", "p(\"a\", \"c\")"}));
  EXPECT_EQ(InstancesOf(view, "a", world.domains.get()),
            (std::set<std::string>{"a(\"a\", \"b\")", "a(\"a\", \"c\")"}));

  View oracle = Unwrap(maint::RecomputeAfterDeletion(
      program, request, world.domains.get()));
  EXPECT_EQ(Instances(view, world.domains.get()),
            Instances(oracle, world.domains.get()));
}

// Example 8: W_P under external function change.
TEST(Example8Test, WpViewNeedsNoMaintenance) {
  TestWorld world = TestWorld::Make();
  // f is modeled by a relational table the clause queries through rel:.
  ASSERT_TRUE(world.catalog
                  ->CreateTable(rel::Schema{"ftab", {"key", "out"}})
                  .status()
                  .ok());
  // At time t: f(b) = {b}; f(X) = {} otherwise.
  ASSERT_TRUE(
      world.catalog->Insert("ftab", {Value("b"), Value("b")}).ok());

  Program program = ParseOrDie(R"(
fact(X, Y) <- X = "a" & Y = "b".
fact(X, Y) <- X = "b" & Y = "b".
atom(X) <- in(R, rel:select_eq("ftab", "key", X)) & in(X2, tuple:get(R, 1)) & X = X2 & fact(X, Y).
)");

  FixpointOptions wp;
  wp.op = OperatorKind::kWp;
  View wp_view = Unwrap(Materialize(program, world.domains.get(), wp));
  std::string syntactic_before = wp_view.ToString();

  // [M] at time t: atom(b) only.
  auto at_t = InstancesOf(wp_view, "atom", world.domains.get());
  EXPECT_EQ(at_t, (std::set<std::string>{"atom(\"b\")"}));

  // Time t+1: f(a) = {a}, f(b) = {}.
  world.catalog->clock().Advance();
  ASSERT_TRUE(world.catalog->Delete("ftab", {Value("b"), Value("b")}).ok());
  ASSERT_TRUE(world.catalog->Insert("ftab", {Value("a"), Value("a")}).ok());

  // Theorem 4: the view is syntactically unchanged...
  EXPECT_EQ(wp_view.ToString(), syntactic_before);
  // ...and Corollary 1: its instances now reflect f_{t+1} with zero
  // maintenance work.
  auto at_t1 = InstancesOf(wp_view, "atom", world.domains.get());
  EXPECT_EQ(at_t1, (std::set<std::string>{"atom(\"a\")"}));

  // The T_P view of time t+1 agrees.
  View tp_view = MaterializeOrDie(program, world.domains.get());
  EXPECT_EQ(InstancesOf(tp_view, "atom", world.domains.get()), at_t1);
}

// Example 3-style deletion over the two-layer law-enforcement shape (the
// small hand-sized version).
TEST(Example3Test, DeletionPropagatesThroughLayers) {
  TestWorld world = TestWorld::Make();
  Program program = ParseOrDie(R"(
seenwith(X, Y) <- X = "corleone" & Y = "john".
seenwith(X, Y) <- X = "corleone" & Y = "ed".
swlndc(X, Y) <- seenwith(X, Y).
)");
  View view = MaterializeOrDie(program, world.domains.get());
  EXPECT_EQ(view.size(), 4u);

  maint::UpdateAtom request = ParseUpdate(
      "seenwith(X, Y) <- X = \"corleone\" & Y = \"john\".", &program);
  Status s =
      maint::DeleteStDel(program, &view, request, world.domains.get());
  ASSERT_TRUE(s.ok()) << s.ToString();

  // Both seenwith(corleone, john) and swlndc(corleone, john) disappear.
  EXPECT_EQ(Instances(view, world.domains.get()),
            (std::set<std::string>{"seenwith(\"corleone\", \"ed\")",
                                   "swlndc(\"corleone\", \"ed\")"}));
}

}  // namespace
}  // namespace mmv
