// Unit tests for the strata subsystem (plan/strata.h): SCC condensation
// and topological layering of the head-predicate dependency graph, the
// PlanCache's strata caching, the thread-pool primitive, and the parallel
// engine's determinism on hand-built programs (the broad randomized
// differential sweep lives in test_join_differential.cc).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "constraint/canonical.h"
#include "core/thread_pool.h"
#include "maintenance/batch.h"
#include "plan/partition.h"
#include "plan/plan_cache.h"
#include "plan/strata.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::ParseOrDie;
using testutil::TestWorld;
using testutil::Unwrap;

// Group membership as "pred,pred" strings per stratum, for readable
// assertions that ignore nothing.
std::vector<std::set<std::string>> Layers(const plan::StrataInfo& info) {
  std::vector<std::set<std::string>> out;
  for (const plan::Stratum& s : info.strata) {
    std::set<std::string> groups;
    for (const plan::PredGroup& g : s.groups) {
      std::string members;
      for (size_t i = 0; i < g.preds.size(); ++i) {
        if (i > 0) members += ',';
        members += g.preds[i].name();
      }
      if (g.recursive) members += '*';
      groups.insert(members);
    }
    out.push_back(std::move(groups));
  }
  return out;
}

TEST(StrataTest, ChainLayersInDependencyOrder) {
  Program p = ParseOrDie(
      "p1(X) <- true || p0(X).\n"
      "p2(X) <- true || p1(X).\n"
      "p3(X) <- true || p2(X).\n"
      "p0(X) <- X = 1.\n");
  plan::StrataInfo info = plan::ComputeStrata(p);
  EXPECT_EQ(info.group_count, 4u);
  ASSERT_EQ(info.strata.size(), 4u);
  EXPECT_EQ(Layers(info), (std::vector<std::set<std::string>>{
                              {"p0"}, {"p1"}, {"p2"}, {"p3"}}));
  EXPECT_EQ(info.StratumOf("p0"), 0);
  EXPECT_EQ(info.StratumOf("p3"), 3);
  EXPECT_EQ(info.StratumOf("edb_only"), -1);
}

TEST(StrataTest, DisconnectedPredicatesShareOneStratum) {
  // a and b never feed each other: both land in stratum 0, two groups —
  // the parallel executor's independence unit.
  Program p = ParseOrDie(
      "a(X) <- true || e1(X).\n"
      "b(X) <- true || e2(X).\n");
  plan::StrataInfo info = plan::ComputeStrata(p);
  ASSERT_EQ(info.strata.size(), 1u);
  EXPECT_EQ(Layers(info)[0],
            (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(info.group_count, 2u);
}

TEST(StrataTest, SelfLoopIsARecursiveSingletonGroup) {
  Program p = ParseOrDie(
      "tc(X, Y) <- true || e(X, Y).\n"
      "tc(X, Z) <- true || tc(X, Y), e(Y, Z).\n");
  plan::StrataInfo info = plan::ComputeStrata(p);
  ASSERT_EQ(info.strata.size(), 1u);
  EXPECT_EQ(Layers(info)[0], (std::set<std::string>{"tc*"}));
  const plan::PredGroup& g = info.strata[0].groups[0];
  EXPECT_TRUE(g.recursive);
  EXPECT_EQ(g.clauses, (std::vector<size_t>{0, 1}));
}

TEST(StrataTest, MutualRecursionCollapsesIntoOneGroup) {
  Program p = ParseOrDie(
      "even(X) <- true || odd(X).\n"
      "odd(X) <- true || even(X).\n"
      "top(X) <- true || even(X).\n");
  plan::StrataInfo info = plan::ComputeStrata(p);
  EXPECT_EQ(info.group_count, 2u);
  ASSERT_EQ(info.strata.size(), 2u);
  EXPECT_EQ(Layers(info), (std::vector<std::set<std::string>>{
                              {"even,odd*"}, {"top"}}));
  EXPECT_EQ(info.StratumOf("even"), info.StratumOf("odd"));
}

TEST(StrataTest, DiamondDependenciesLayerByLongestPath) {
  Program p = ParseOrDie(
      "b(X) <- true || a(X).\n"
      "c(X) <- true || a(X).\n"
      "d(X) <- true || b(X), c(X).\n"
      "a(X) <- X = 1.\n");
  plan::StrataInfo info = plan::ComputeStrata(p);
  ASSERT_EQ(info.strata.size(), 3u);
  EXPECT_EQ(Layers(info), (std::vector<std::set<std::string>>{
                              {"a"}, {"b", "c"}, {"d"}}));
}

TEST(StrataTest, FactsOnlyProgramIsOneStratumOfLeaves) {
  Program p = ParseOrDie("f(X) <- X = 1.\ng(X) <- X = 2.\n");
  plan::StrataInfo info = plan::ComputeStrata(p);
  ASSERT_EQ(info.strata.size(), 1u);
  EXPECT_EQ(info.group_count, 2u);
  EXPECT_TRUE(plan::ComputeStrata(Program()).strata.empty());
}

TEST(StrataTest, DeterministicAcrossRecomputation) {
  Rng rng(11);
  workload::RandomProgramOptions o;
  o.base_preds = 3;
  o.derived_preds = 4;
  Program p = workload::MakeRandomProgram(&rng, o);
  EXPECT_EQ(plan::ComputeStrata(p).ToString(),
            plan::ComputeStrata(p).ToString());
}

TEST(StrataTest, PlanCacheCachesAndInvalidatesStrata) {
  Program p = ParseOrDie(
      "b(X) <- true || a(X).\n"
      "a(X) <- X = 1.\n");
  plan::PlanCache cache;
  std::shared_ptr<const plan::StrataInfo> first = cache.StrataFor(p);
  EXPECT_EQ(first.get(), cache.StrataFor(p).get());  // cached

  // Appending a clause keeps the program identity but must rebuild the
  // strata: the dependency graph changed.
  {
    Clause c;
    c.head_pred = "c";
    VarId x = p.factory()->Fresh();
    c.head_args = {Term::Var(x)};
    c.body.push_back(BodyAtom{"b", {Term::Var(x)}});
    p.AddClause(std::move(c));
  }
  std::shared_ptr<const plan::StrataInfo> grown = cache.StrataFor(p);
  EXPECT_NE(first.get(), grown.get());
  EXPECT_EQ(grown->strata.size(), 3u);

  // A copied program is a different identity: the cache flushes.
  Program copy = p;
  std::shared_ptr<const plan::StrataInfo> other = cache.StrataFor(copy);
  EXPECT_NE(grown.get(), other.get());
  EXPECT_EQ(other->ToString(), grown->ToString());
}

// ---- thread pool ----------------------------------------------------------

TEST(ThreadPoolTest, ParallelForRunsEveryItemExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  ThreadPool::Global().ParallelFor(hits.size(), 8,
                                   [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadAndEmptyBatchesRunInline) {
  int calls = 0;
  ThreadPool::Global().ParallelFor(0, 8, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ThreadPool::Global().ParallelFor(5, 1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPoolTest, NestedParallelForFallsBackInline) {
  std::atomic<int> inner_total{0};
  ThreadPool::Global().ParallelFor(4, 4, [&](size_t) {
    ThreadPool::Global().ParallelFor(3, 4,
                                     [&](size_t) { inner_total++; });
  });
  EXPECT_EQ(inner_total.load(), 12);
}

TEST(ThreadPoolTest, ReentrantSubmissionRunsInnerItemsOnCallingThread) {
  // The degrade-inline contract, pinned precisely: a ParallelFor issued
  // from inside a pool worker must not re-enter the pool's batch state —
  // every inner item runs on the thread that submitted it. Slices and
  // StDel shards rely on this to nest arbitrary library code that may
  // itself call ParallelFor.
  std::atomic<int> mismatches{0};
  ThreadPool::Global().ParallelFor(4, 4, [&](size_t) {
    std::thread::id outer = std::this_thread::get_id();
    ThreadPool::Global().ParallelFor(8, 4, [&](size_t) {
      if (std::this_thread::get_id() != outer) mismatches++;
    });
  });
  EXPECT_EQ(mismatches.load(), 0);
}

// ---- pivot-window partitioning --------------------------------------------

TEST(PartitionTest, RangesAreContiguousDisjointAndComplete) {
  // The shard ranges must cover [0, items) exactly once, in order: a
  // boundary that split or duplicated a pivot bucket entry would break
  // the merge's sequential-append replay.
  for (size_t items : {size_t{0}, size_t{1}, size_t{5}, size_t{63},
                       size_t{64}, size_t{127}, size_t{128}, size_t{129},
                       size_t{300}, size_t{1000}}) {
    for (int parts : {1, 2, 3, 7, 8, 16}) {
      size_t expect_begin = 0;
      for (int s = 0; s < parts; ++s) {
        auto [begin, end] = plan::PartitionRange(items, parts, s);
        EXPECT_EQ(begin, expect_begin)
            << items << " items, " << parts << " parts, shard " << s;
        EXPECT_LE(begin, end);
        expect_begin = end;
      }
      EXPECT_EQ(expect_begin, items) << items << " items, " << parts
                                     << " parts";
    }
  }
}

TEST(PartitionTest, CountForRespectsFloorAndCap) {
  // Below twice the per-shard floor a window is not worth splitting; above
  // it the count is items/floor capped at the thread budget. The decision
  // depends only on (window size, threads) — never on scheduling — so the
  // schedule shape itself is deterministic.
  EXPECT_EQ(plan::PartitionCountFor(0, 8), 1);
  EXPECT_EQ(plan::PartitionCountFor(2 * plan::kMinPartitionItems - 1, 8), 1);
  EXPECT_EQ(plan::PartitionCountFor(2 * plan::kMinPartitionItems, 8), 2);
  EXPECT_EQ(plan::PartitionCountFor(16 * plan::kMinPartitionItems, 8), 8);
  EXPECT_EQ(plan::PartitionCountFor(16 * plan::kMinPartitionItems, 1), 1);
  EXPECT_EQ(plan::PartitionCountFor(1000, 8, /*min_per_shard=*/2), 8);
  EXPECT_EQ(plan::PartitionCountFor(7, 8, /*min_per_shard=*/2), 3);
}

// ---- parallel engine on hand-built programs -------------------------------

std::multiset<std::string> Canon(const View& v) {
  std::multiset<std::string> out;
  for (const ViewAtom& a : v.atoms()) {
    out.insert(CanonicalAtomString(a.pred, a.args, a.constraint));
  }
  return out;
}

std::multiset<std::string> Sups(const View& v) {
  std::multiset<std::string> out;
  for (const ViewAtom& a : v.atoms()) out.insert(a.support.ToString());
  return out;
}

TEST(ParallelStrataTest, GuardedMultiChainMatchesSequentialByteForByte) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeGuardedMultiChain(/*chains=*/4, /*depth=*/4,
                                              /*width=*/5);
  FixpointOptions opts;
  FixpointStats seq;
  View sequential = Unwrap(Materialize(p, w.domains.get(), opts, &seq));
  for (int threads : {2, 3, 8}) {
    opts.num_threads = threads;
    FixpointStats par;
    View parallel = Unwrap(Materialize(p, w.domains.get(), opts, &par));
    EXPECT_EQ(Canon(sequential), Canon(parallel)) << threads << " threads";
    EXPECT_EQ(Sups(sequential), Sups(parallel)) << threads << " threads";
    EXPECT_EQ(seq.atoms_created, par.atoms_created);
    EXPECT_EQ(seq.duplicates_suppressed, par.duplicates_suppressed);
    EXPECT_EQ(seq.derivations_attempted, par.derivations_attempted);
    EXPECT_EQ(seq.iterations, par.iterations);
    // The atom ORDER is part of the parallel merge contract (clause index,
    // then enumeration order — the sequential append order), not just the
    // multiset: assert it positionally via supports.
    ASSERT_EQ(sequential.size(), parallel.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(sequential.atoms()[i].support.ToString(),
                parallel.atoms()[i].support.ToString())
          << "position " << i;
    }
    // Run-to-run determinism is STRONGER than sequential equivalence:
    // two parallel runs at the same thread count must agree on the whole
    // rendered view, fresh-variable numbering included (the merge assigns
    // real ids in replay order, never in scheduling order).
    View again = Unwrap(Materialize(p, w.domains.get(), opts));
    EXPECT_EQ(parallel.ToString(), again.ToString()) << threads << " threads";
  }
}

// Transitive closure over \p edges with a DCA guard on the recursive
// clause — in(S, arith:plus(X,Y)) — so every recursive derivation pays a
// real domain evaluation. One recursive predicate means ONE SCC: the
// strata axis offers no parallelism at all, and any fan-out comes from
// intra-SCC delta partitioning.
Program MakeGuardedTc(const std::vector<std::pair<int, int>>& edges) {
  Program p;
  for (const auto& [from, to] : edges) {
    Clause c;
    c.head_pred = "e";
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh();
    c.head_args = {Term::Var(x), Term::Var(y)};
    c.constraint.Add(Primitive::Eq(Term::Var(x), Term::Const(Value(from))));
    c.constraint.Add(Primitive::Eq(Term::Var(y), Term::Const(Value(to))));
    p.AddClause(std::move(c));
  }
  {
    Clause c;
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh();
    c.head_pred = "path";
    c.head_args = {Term::Var(x), Term::Var(y)};
    c.body.push_back(BodyAtom{"e", {Term::Var(x), Term::Var(y)}});
    p.AddClause(std::move(c));
  }
  {
    Clause c;
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh(),
          z = p.factory()->Fresh(), s = p.factory()->Fresh();
    c.head_pred = "path";
    c.head_args = {Term::Var(x), Term::Var(y)};
    c.body.push_back(BodyAtom{"e", {Term::Var(x), Term::Var(z)}});
    c.body.push_back(BodyAtom{"path", {Term::Var(z), Term::Var(y)}});
    DomainCall call;
    call.domain = "arith";
    call.function = "plus";
    call.args = {Term::Var(x), Term::Var(y)};
    c.constraint.Add(Primitive::In(Term::Var(s), std::move(call)));
    p.AddClause(std::move(c));
  }
  return p;
}

// Byte-identity for both semantics on a single-SCC recursive chain: many
// small rounds where the per-(clause, pivot) slices carry all of the
// parallelism (the windows stay below the partition threshold).
TEST(ParallelStrataTest, SingleSccGuardedTcMatchesSequentialByteForByte) {
  TestWorld w = TestWorld::Make();
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < 20; ++i) edges.push_back({i, i + 1});
  Program p = MakeGuardedTc(edges);
  for (DupSemantics semantics :
       {DupSemantics::kDuplicate, DupSemantics::kSet}) {
    FixpointOptions opts;
    opts.semantics = semantics;
    FixpointStats seq;
    View sequential = Unwrap(Materialize(p, w.domains.get(), opts, &seq));
    for (int threads : {2, 8}) {
      opts.num_threads = threads;
      FixpointStats par;
      View parallel = Unwrap(Materialize(p, w.domains.get(), opts, &par));
      EXPECT_EQ(Canon(sequential), Canon(parallel)) << threads << " threads";
      EXPECT_EQ(Sups(sequential), Sups(parallel)) << threads << " threads";
      EXPECT_EQ(seq.atoms_created, par.atoms_created);
      EXPECT_EQ(seq.duplicates_suppressed, par.duplicates_suppressed);
      EXPECT_EQ(seq.derivations_attempted, par.derivations_attempted);
      EXPECT_EQ(seq.iterations, par.iterations);
      ASSERT_EQ(sequential.size(), parallel.size());
      for (size_t i = 0; i < sequential.size(); ++i) {
        EXPECT_EQ(sequential.atoms()[i].support.ToString(),
                  parallel.atoms()[i].support.ToString())
            << "position " << i;
      }
    }
  }
}

// A single-SCC star whose fact window (300 spokes into the hub) clears the
// partition threshold: at 2 and 8 threads the recursive clause's pivot
// bucket is actually SPLIT into shards — partitions_run proves it ran that
// way — and the guarded derivations hit the shared evaluator from several
// workers at once (the TSan job's quarry). The merged view must still be
// byte-identical to the sequential run, supports and positions included.
TEST(ParallelStrataTest, ShardedSingleSccStarMatchesSequentialByteForByte) {
  TestWorld w = TestWorld::Make();
  std::vector<std::pair<int, int>> edges;
  for (int j = 2; j <= 301; ++j) edges.push_back({j, 0});
  edges.push_back({0, 1});  // every spoke reaches 1 through the hub
  Program p = MakeGuardedTc(edges);
  FixpointOptions opts;
  FixpointStats seq;
  View sequential = Unwrap(Materialize(p, w.domains.get(), opts, &seq));
  EXPECT_EQ(seq.partitions_run, 0);  // the sequential engine never shards
  for (int threads : {2, 8}) {
    opts.num_threads = threads;
    FixpointStats par;
    View parallel = Unwrap(Materialize(p, w.domains.get(), opts, &par));
    EXPECT_GT(par.partitions_run, 0) << threads << " threads";
    EXPECT_EQ(Canon(sequential), Canon(parallel)) << threads << " threads";
    EXPECT_EQ(Sups(sequential), Sups(parallel)) << threads << " threads";
    EXPECT_EQ(seq.atoms_created, par.atoms_created);
    EXPECT_EQ(seq.duplicates_suppressed, par.duplicates_suppressed);
    EXPECT_EQ(seq.derivations_attempted, par.derivations_attempted);
    EXPECT_EQ(seq.iterations, par.iterations);
    ASSERT_EQ(sequential.size(), parallel.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(sequential.atoms()[i].support.ToString(),
                parallel.atoms()[i].support.ToString())
          << "position " << i;
    }
    View again = Unwrap(Materialize(p, w.domains.get(), opts));
    EXPECT_EQ(parallel.ToString(), again.ToString()) << threads << " threads";
  }
}

// Regression: the staging budget counts PRE-dedup atoms, so a capped
// parallel pass may stop before derivations the sequential engine (which
// caps on the deduped view size) would still reach. Such runs must report
// truncated=true — silently returning an incomplete view as complete is
// the one way the parallel engine could lie.
TEST(ParallelStrataTest, StagingBudgetCutoffIsFlaggedTruncated) {
  TestWorld w = TestWorld::Make();
  std::ostringstream os;
  for (int i = 0; i < 10; ++i) os << "a(X) <- X = " << i << ".\n";
  for (int i = 0; i < 3; ++i) os << "t(X) <- X = " << 100 + i << ".\n";
  os << "e(X) <- true || a(X), t(Y).\n";
  Program p = ParseOrDie(os.str());
  FixpointOptions opts;
  opts.semantics = DupSemantics::kSet;
  opts.num_threads = 4;
  // 13 facts + a 12-atom per-slice staging budget. The clause's two pivot
  // slices make the round fan out; the a-pivot slice enumerates 30
  // (a, t) pairs projecting to 10 canonical e atoms, stages 12 raw
  // derivations (4 uniques + 8 canonical duplicates under kSet), caps,
  // and never reaches the rest — while the MERGED view lands at 17 < 25,
  // so only the capped-sink flag can report the cutoff (the view-size
  // cap never fires).
  opts.max_atoms = 25;
  FixpointStats stats;
  View v = Unwrap(Materialize(p, w.domains.get(), opts, &stats));
  EXPECT_TRUE(stats.truncated);
  EXPECT_LT(v.size(), 25u);
}

TEST(ParallelStrataTest, NaiveJoinModeIgnoresThreadCount) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeGuardedChain(3, 4);
  FixpointOptions opts;
  opts.join_mode = JoinMode::kNaive;
  opts.num_threads = 8;  // must silently run the sequential oracle
  FixpointStats stats;
  View v = Unwrap(Materialize(p, w.domains.get(), opts, &stats));
  EXPECT_EQ(stats.index_probes, 0);
  opts.join_mode = JoinMode::kIndexed;
  opts.num_threads = 1;
  View s = Unwrap(Materialize(p, w.domains.get(), opts));
  EXPECT_EQ(Canon(s), Canon(v));
}

// StDel's parallel step-3 lift checks: a burst of deletions through
// ApplyBatch must leave the canonically identical view (and identical
// propagation counters) whatever num_threads says.
TEST(ParallelStrataTest, ParallelStepThreeMatchesSequential) {
  TestWorld w = TestWorld::Make();
  for (uint64_t seed = 100; seed < 110; ++seed) {
    Rng rng(seed);
    Program p = workload::MakeGuardedMultiChain(
        /*chains=*/3, /*depth=*/static_cast<int>(rng.Int(2, 5)),
        /*width=*/static_cast<int>(rng.Int(3, 6)));
    std::vector<maint::Update> burst;
    for (int i = 0; i < 4; ++i) {
      maint::UpdateAtom req;
      req.pred = "c" + std::to_string(rng.Int(0, 2)) + "_p0";
      VarId x = p.factory()->Fresh();
      req.args = {Term::Var(x)};
      req.constraint.Add(Primitive::Eq(
          Term::Var(x), Term::Const(Value(rng.Int(0, 5)))));
      burst.push_back(maint::Update{maint::Update::Kind::kDelete,
                                    std::move(req)});
    }
    auto run = [&](int threads, maint::BatchStats* stats) {
      FixpointOptions opts;
      opts.num_threads = threads;
      View v = Unwrap(Materialize(p, w.domains.get(), opts));
      Status s = maint::ApplyBatch(p, &v, burst, w.domains.get(), opts,
                                   stats);
      EXPECT_TRUE(s.ok()) << s.ToString();
      return v;
    };
    maint::BatchStats seq_stats, par_stats;
    View sequential = run(1, &seq_stats);
    View parallel = run(8, &par_stats);
    EXPECT_EQ(Canon(sequential), Canon(parallel)) << "seed " << seed;
    EXPECT_EQ(Sups(sequential), Sups(parallel)) << "seed " << seed;
    EXPECT_EQ(seq_stats.replacements, par_stats.replacements);
    EXPECT_EQ(seq_stats.step3_replacements, par_stats.step3_replacements);
    EXPECT_EQ(seq_stats.removed_unsolvable, par_stats.removed_unsolvable);
    if (::testing::Test::HasFailure()) return;
  }
}

// ---- option plumbing ------------------------------------------------------

TEST(ParallelStrataTest, ParseThreadsFailsLoudly) {
  EXPECT_EQ(*ParseThreads("1"), 1);
  EXPECT_EQ(*ParseThreads("8"), 8);
  EXPECT_EQ(*ParseThreads("4096"), 4096);
  for (const char* bad : {"", "0", "-1", "two", "8x", "99999", "1.5"}) {
    Result<int> r = ParseThreads(bad);
    EXPECT_FALSE(r.ok()) << bad;
    EXPECT_NE(r.status().message().find("unknown thread count"),
              std::string::npos);
  }
}

TEST(ParallelStrataTest, ThreadsFromEnvDefaultsToSequential) {
  if (std::getenv("MMV_THREADS") == nullptr) {
    EXPECT_EQ(*ThreadsFromEnv(), 1);
  } else {
    EXPECT_TRUE(ThreadsFromEnv().ok());  // CI exports a valid count
  }
}

}  // namespace
}  // namespace mmv
