// Unit tests for the strata subsystem (plan/strata.h): SCC condensation
// and topological layering of the head-predicate dependency graph, the
// PlanCache's strata caching, the thread-pool primitive, and the parallel
// engine's determinism on hand-built programs (the broad randomized
// differential sweep lives in test_join_differential.cc).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "constraint/canonical.h"
#include "core/thread_pool.h"
#include "maintenance/batch.h"
#include "plan/plan_cache.h"
#include "plan/strata.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::ParseOrDie;
using testutil::TestWorld;
using testutil::Unwrap;

// Group membership as "pred,pred" strings per stratum, for readable
// assertions that ignore nothing.
std::vector<std::set<std::string>> Layers(const plan::StrataInfo& info) {
  std::vector<std::set<std::string>> out;
  for (const plan::Stratum& s : info.strata) {
    std::set<std::string> groups;
    for (const plan::PredGroup& g : s.groups) {
      std::string members;
      for (size_t i = 0; i < g.preds.size(); ++i) {
        if (i > 0) members += ',';
        members += g.preds[i].name();
      }
      if (g.recursive) members += '*';
      groups.insert(members);
    }
    out.push_back(std::move(groups));
  }
  return out;
}

TEST(StrataTest, ChainLayersInDependencyOrder) {
  Program p = ParseOrDie(
      "p1(X) <- true || p0(X).\n"
      "p2(X) <- true || p1(X).\n"
      "p3(X) <- true || p2(X).\n"
      "p0(X) <- X = 1.\n");
  plan::StrataInfo info = plan::ComputeStrata(p);
  EXPECT_EQ(info.group_count, 4u);
  ASSERT_EQ(info.strata.size(), 4u);
  EXPECT_EQ(Layers(info), (std::vector<std::set<std::string>>{
                              {"p0"}, {"p1"}, {"p2"}, {"p3"}}));
  EXPECT_EQ(info.StratumOf("p0"), 0);
  EXPECT_EQ(info.StratumOf("p3"), 3);
  EXPECT_EQ(info.StratumOf("edb_only"), -1);
}

TEST(StrataTest, DisconnectedPredicatesShareOneStratum) {
  // a and b never feed each other: both land in stratum 0, two groups —
  // the parallel executor's independence unit.
  Program p = ParseOrDie(
      "a(X) <- true || e1(X).\n"
      "b(X) <- true || e2(X).\n");
  plan::StrataInfo info = plan::ComputeStrata(p);
  ASSERT_EQ(info.strata.size(), 1u);
  EXPECT_EQ(Layers(info)[0],
            (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(info.group_count, 2u);
}

TEST(StrataTest, SelfLoopIsARecursiveSingletonGroup) {
  Program p = ParseOrDie(
      "tc(X, Y) <- true || e(X, Y).\n"
      "tc(X, Z) <- true || tc(X, Y), e(Y, Z).\n");
  plan::StrataInfo info = plan::ComputeStrata(p);
  ASSERT_EQ(info.strata.size(), 1u);
  EXPECT_EQ(Layers(info)[0], (std::set<std::string>{"tc*"}));
  const plan::PredGroup& g = info.strata[0].groups[0];
  EXPECT_TRUE(g.recursive);
  EXPECT_EQ(g.clauses, (std::vector<size_t>{0, 1}));
}

TEST(StrataTest, MutualRecursionCollapsesIntoOneGroup) {
  Program p = ParseOrDie(
      "even(X) <- true || odd(X).\n"
      "odd(X) <- true || even(X).\n"
      "top(X) <- true || even(X).\n");
  plan::StrataInfo info = plan::ComputeStrata(p);
  EXPECT_EQ(info.group_count, 2u);
  ASSERT_EQ(info.strata.size(), 2u);
  EXPECT_EQ(Layers(info), (std::vector<std::set<std::string>>{
                              {"even,odd*"}, {"top"}}));
  EXPECT_EQ(info.StratumOf("even"), info.StratumOf("odd"));
}

TEST(StrataTest, DiamondDependenciesLayerByLongestPath) {
  Program p = ParseOrDie(
      "b(X) <- true || a(X).\n"
      "c(X) <- true || a(X).\n"
      "d(X) <- true || b(X), c(X).\n"
      "a(X) <- X = 1.\n");
  plan::StrataInfo info = plan::ComputeStrata(p);
  ASSERT_EQ(info.strata.size(), 3u);
  EXPECT_EQ(Layers(info), (std::vector<std::set<std::string>>{
                              {"a"}, {"b", "c"}, {"d"}}));
}

TEST(StrataTest, FactsOnlyProgramIsOneStratumOfLeaves) {
  Program p = ParseOrDie("f(X) <- X = 1.\ng(X) <- X = 2.\n");
  plan::StrataInfo info = plan::ComputeStrata(p);
  ASSERT_EQ(info.strata.size(), 1u);
  EXPECT_EQ(info.group_count, 2u);
  EXPECT_TRUE(plan::ComputeStrata(Program()).strata.empty());
}

TEST(StrataTest, DeterministicAcrossRecomputation) {
  Rng rng(11);
  workload::RandomProgramOptions o;
  o.base_preds = 3;
  o.derived_preds = 4;
  Program p = workload::MakeRandomProgram(&rng, o);
  EXPECT_EQ(plan::ComputeStrata(p).ToString(),
            plan::ComputeStrata(p).ToString());
}

TEST(StrataTest, PlanCacheCachesAndInvalidatesStrata) {
  Program p = ParseOrDie(
      "b(X) <- true || a(X).\n"
      "a(X) <- X = 1.\n");
  plan::PlanCache cache;
  std::shared_ptr<const plan::StrataInfo> first = cache.StrataFor(p);
  EXPECT_EQ(first.get(), cache.StrataFor(p).get());  // cached

  // Appending a clause keeps the program identity but must rebuild the
  // strata: the dependency graph changed.
  {
    Clause c;
    c.head_pred = "c";
    VarId x = p.factory()->Fresh();
    c.head_args = {Term::Var(x)};
    c.body.push_back(BodyAtom{"b", {Term::Var(x)}});
    p.AddClause(std::move(c));
  }
  std::shared_ptr<const plan::StrataInfo> grown = cache.StrataFor(p);
  EXPECT_NE(first.get(), grown.get());
  EXPECT_EQ(grown->strata.size(), 3u);

  // A copied program is a different identity: the cache flushes.
  Program copy = p;
  std::shared_ptr<const plan::StrataInfo> other = cache.StrataFor(copy);
  EXPECT_NE(grown.get(), other.get());
  EXPECT_EQ(other->ToString(), grown->ToString());
}

// ---- thread pool ----------------------------------------------------------

TEST(ThreadPoolTest, ParallelForRunsEveryItemExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  ThreadPool::Global().ParallelFor(hits.size(), 8,
                                   [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadAndEmptyBatchesRunInline) {
  int calls = 0;
  ThreadPool::Global().ParallelFor(0, 8, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ThreadPool::Global().ParallelFor(5, 1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPoolTest, NestedParallelForFallsBackInline) {
  std::atomic<int> inner_total{0};
  ThreadPool::Global().ParallelFor(4, 4, [&](size_t) {
    ThreadPool::Global().ParallelFor(3, 4,
                                     [&](size_t) { inner_total++; });
  });
  EXPECT_EQ(inner_total.load(), 12);
}

// ---- parallel engine on hand-built programs -------------------------------

std::multiset<std::string> Canon(const View& v) {
  std::multiset<std::string> out;
  for (const ViewAtom& a : v.atoms()) {
    out.insert(CanonicalAtomString(a.pred, a.args, a.constraint));
  }
  return out;
}

std::multiset<std::string> Sups(const View& v) {
  std::multiset<std::string> out;
  for (const ViewAtom& a : v.atoms()) out.insert(a.support.ToString());
  return out;
}

TEST(ParallelStrataTest, GuardedMultiChainMatchesSequentialByteForByte) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeGuardedMultiChain(/*chains=*/4, /*depth=*/4,
                                              /*width=*/5);
  FixpointOptions opts;
  FixpointStats seq;
  View sequential = Unwrap(Materialize(p, w.domains.get(), opts, &seq));
  for (int threads : {2, 3, 8}) {
    opts.num_threads = threads;
    FixpointStats par;
    View parallel = Unwrap(Materialize(p, w.domains.get(), opts, &par));
    EXPECT_EQ(Canon(sequential), Canon(parallel)) << threads << " threads";
    EXPECT_EQ(Sups(sequential), Sups(parallel)) << threads << " threads";
    EXPECT_EQ(seq.atoms_created, par.atoms_created);
    EXPECT_EQ(seq.duplicates_suppressed, par.duplicates_suppressed);
    EXPECT_EQ(seq.derivations_attempted, par.derivations_attempted);
    EXPECT_EQ(seq.iterations, par.iterations);
    // The atom ORDER is part of the parallel merge contract (clause index,
    // then enumeration order — the sequential append order), not just the
    // multiset: assert it positionally via supports.
    ASSERT_EQ(sequential.size(), parallel.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(sequential.atoms()[i].support.ToString(),
                parallel.atoms()[i].support.ToString())
          << "position " << i;
    }
    // Run-to-run determinism is STRONGER than sequential equivalence:
    // two parallel runs at the same thread count must agree on the whole
    // rendered view, fresh-variable numbering included (the merge assigns
    // real ids in replay order, never in scheduling order).
    View again = Unwrap(Materialize(p, w.domains.get(), opts));
    EXPECT_EQ(parallel.ToString(), again.ToString()) << threads << " threads";
  }
}

// Regression: the staging budget counts PRE-dedup atoms, so a capped
// parallel pass may stop before derivations the sequential engine (which
// caps on the deduped view size) would still reach. Such runs must report
// truncated=true — silently returning an incomplete view as complete is
// the one way the parallel engine could lie.
TEST(ParallelStrataTest, StagingBudgetCutoffIsFlaggedTruncated) {
  TestWorld w = TestWorld::Make();
  std::ostringstream os;
  for (int i = 0; i < 10; ++i) {
    os << "a(X) <- X = " << i << ".\n";
    os << "b(X) <- X = " << 100 + i << ".\n";
  }
  os << "z(X) <- X = 500.\n";       // second derived group, so the round
  os << "g(X) <- true || z(X).\n";  // actually runs the parallel path
  os << "e(X) <- true || a(X).\n";
  os << "e(X) <- true || a(X).\n";  // canonical duplicates under kSet
  os << "e(X) <- true || b(X).\n";
  Program p = ParseOrDie(os.str());
  FixpointOptions opts;
  opts.semantics = DupSemantics::kSet;
  opts.num_threads = 4;
  // 21 facts + a 12-atom staging budget: the e-task stages 10 uniques and
  // 2 canonical duplicates, caps, and never reaches e <- b — while the
  // MERGED view lands at 32 < max_atoms, so only the capped-sink flag can
  // report the cutoff (the view-size cap never fires).
  opts.max_atoms = 33;
  FixpointStats stats;
  View v = Unwrap(Materialize(p, w.domains.get(), opts, &stats));
  EXPECT_TRUE(stats.truncated);
  EXPECT_LT(v.size(), 33u);
}

TEST(ParallelStrataTest, NaiveJoinModeIgnoresThreadCount) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeGuardedChain(3, 4);
  FixpointOptions opts;
  opts.join_mode = JoinMode::kNaive;
  opts.num_threads = 8;  // must silently run the sequential oracle
  FixpointStats stats;
  View v = Unwrap(Materialize(p, w.domains.get(), opts, &stats));
  EXPECT_EQ(stats.index_probes, 0);
  opts.join_mode = JoinMode::kIndexed;
  opts.num_threads = 1;
  View s = Unwrap(Materialize(p, w.domains.get(), opts));
  EXPECT_EQ(Canon(s), Canon(v));
}

// StDel's parallel step-3 lift checks: a burst of deletions through
// ApplyBatch must leave the canonically identical view (and identical
// propagation counters) whatever num_threads says.
TEST(ParallelStrataTest, ParallelStepThreeMatchesSequential) {
  TestWorld w = TestWorld::Make();
  for (uint64_t seed = 100; seed < 110; ++seed) {
    Rng rng(seed);
    Program p = workload::MakeGuardedMultiChain(
        /*chains=*/3, /*depth=*/static_cast<int>(rng.Int(2, 5)),
        /*width=*/static_cast<int>(rng.Int(3, 6)));
    std::vector<maint::Update> burst;
    for (int i = 0; i < 4; ++i) {
      maint::UpdateAtom req;
      req.pred = "c" + std::to_string(rng.Int(0, 2)) + "_p0";
      VarId x = p.factory()->Fresh();
      req.args = {Term::Var(x)};
      req.constraint.Add(Primitive::Eq(
          Term::Var(x), Term::Const(Value(rng.Int(0, 5)))));
      burst.push_back(maint::Update{maint::Update::Kind::kDelete,
                                    std::move(req)});
    }
    auto run = [&](int threads, maint::BatchStats* stats) {
      FixpointOptions opts;
      opts.num_threads = threads;
      View v = Unwrap(Materialize(p, w.domains.get(), opts));
      Status s = maint::ApplyBatch(p, &v, burst, w.domains.get(), opts,
                                   stats);
      EXPECT_TRUE(s.ok()) << s.ToString();
      return v;
    };
    maint::BatchStats seq_stats, par_stats;
    View sequential = run(1, &seq_stats);
    View parallel = run(8, &par_stats);
    EXPECT_EQ(Canon(sequential), Canon(parallel)) << "seed " << seed;
    EXPECT_EQ(Sups(sequential), Sups(parallel)) << "seed " << seed;
    EXPECT_EQ(seq_stats.replacements, par_stats.replacements);
    EXPECT_EQ(seq_stats.step3_replacements, par_stats.step3_replacements);
    EXPECT_EQ(seq_stats.removed_unsolvable, par_stats.removed_unsolvable);
    if (::testing::Test::HasFailure()) return;
  }
}

// ---- option plumbing ------------------------------------------------------

TEST(ParallelStrataTest, ParseThreadsFailsLoudly) {
  EXPECT_EQ(*ParseThreads("1"), 1);
  EXPECT_EQ(*ParseThreads("8"), 8);
  EXPECT_EQ(*ParseThreads("4096"), 4096);
  for (const char* bad : {"", "0", "-1", "two", "8x", "99999", "1.5"}) {
    Result<int> r = ParseThreads(bad);
    EXPECT_FALSE(r.ok()) << bad;
    EXPECT_NE(r.status().message().find("unknown thread count"),
              std::string::npos);
  }
}

TEST(ParallelStrataTest, ThreadsFromEnvDefaultsToSequential) {
  if (std::getenv("MMV_THREADS") == nullptr) {
    EXPECT_EQ(*ThreadsFromEnv(), 1);
  } else {
    EXPECT_TRUE(ThreadsFromEnv().ok());  // CI exports a valid count
  }
}

}  // namespace
}  // namespace mmv
