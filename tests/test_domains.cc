// Unit tests for the domain suite (arith, tuple, rel, spatial, faces, text)
// and the DomainManager's time machinery.

#include <gtest/gtest.h>

#include "test_util.h"

namespace mmv {
namespace {

using testutil::TestWorld;
using testutil::Unwrap;

class DomainsTest : public ::testing::Test {
 protected:
  void SetUp() override { world_ = TestWorld::Make(); }
  Result<DcaResult> Call(const std::string& d, const std::string& f,
                         std::vector<Value> args) {
    return world_.domains->Evaluate(d, f, args);
  }
  TestWorld world_;
};

TEST_F(DomainsTest, ArithSingletons) {
  DcaResult plus = Unwrap(Call("arith", "plus", {Value(2), Value(3)}));
  ASSERT_EQ(plus.kind, DcaResultKind::kFinite);
  EXPECT_EQ(plus.values, (std::vector<Value>{Value(5)}));

  EXPECT_EQ(Unwrap(Call("arith", "minus", {Value(2), Value(3)})).values[0],
            Value(-1));
  EXPECT_EQ(Unwrap(Call("arith", "times", {Value(4), Value(3)})).values[0],
            Value(12));
  EXPECT_EQ(Unwrap(Call("arith", "abs", {Value(-7)})).values[0], Value(7));
  EXPECT_EQ(Unwrap(Call("arith", "min", {Value(4), Value(3)})).values[0],
            Value(3));
  EXPECT_EQ(Unwrap(Call("arith", "max", {Value(4), Value(3)})).values[0],
            Value(4));
  EXPECT_EQ(Unwrap(Call("arith", "mod", {Value(7), Value(3)})).values[0],
            Value(1));
}

TEST_F(DomainsTest, ArithDivByZeroIsEmptySet) {
  DcaResult r = Unwrap(Call("arith", "div", {Value(1), Value(0)}));
  EXPECT_EQ(r.kind, DcaResultKind::kFinite);
  EXPECT_TRUE(r.values.empty());
}

TEST_F(DomainsTest, ArithIntervals) {
  DcaResult g = Unwrap(Call("arith", "greater", {Value(5)}));
  ASSERT_EQ(g.kind, DcaResultKind::kInterval);
  EXPECT_TRUE(g.interval.integral);
  EXPECT_TRUE(g.interval.lo_strict);
  EXPECT_EQ(g.interval.lo, 5);
  EXPECT_FALSE(g.interval.Contains(5));
  EXPECT_TRUE(g.interval.Contains(6));

  DcaResult bt = Unwrap(Call("arith", "between", {Value(1), Value(4)}));
  ASSERT_EQ(bt.kind, DcaResultKind::kInterval);
  EXPECT_EQ(bt.interval.IntegralCount().value(), 4);
}

TEST_F(DomainsTest, ArithErrors) {
  EXPECT_EQ(Call("arith", "nope", {}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(Call("arith", "plus", {Value(1)}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Call("arith", "plus", {Value("x"), Value(1)}).status().code(),
            StatusCode::kTypeError);
}

TEST_F(DomainsTest, TupleDomain) {
  Value t(ValueList{Value("a"), Value(2)});
  EXPECT_EQ(Unwrap(Call("tuple", "get", {t, Value(0)})).values[0],
            Value("a"));
  EXPECT_EQ(Unwrap(Call("tuple", "get", {t, Value(1)})).values[0], Value(2));
  // Out of range: empty set, not an error.
  EXPECT_TRUE(Unwrap(Call("tuple", "get", {t, Value(5)})).values.empty());
  EXPECT_EQ(Unwrap(Call("tuple", "size", {t})).values[0], Value(2));
}

TEST_F(DomainsTest, RelationalSelectAndTimeTravel) {
  ASSERT_TRUE(world_.catalog->CreateTable(rel::Schema{"t", {"k", "v"}}).ok());
  ASSERT_TRUE(world_.catalog->Insert("t", {Value("a"), Value(1)}).ok());
  world_.catalog->clock().Advance();
  ASSERT_TRUE(world_.catalog->Insert("t", {Value("a"), Value(2)}).ok());

  DcaResult now = Unwrap(Call("rel", "select_eq",
                              {Value("t"), Value("k"), Value("a")}));
  EXPECT_EQ(now.values.size(), 2u);

  DcaResult before = Unwrap(world_.domains->EvaluateAt(
      "rel", "select_eq", {Value("t"), Value("k"), Value("a")}, 0));
  EXPECT_EQ(before.values.size(), 1u);

  // Pinning makes Evaluate read the past.
  world_.domains->PinTime(0);
  DcaResult pinned = Unwrap(Call("rel", "select_eq",
                                 {Value("t"), Value("k"), Value("a")}));
  EXPECT_EQ(pinned.values.size(), 1u);
  world_.domains->PinTime(-1);
}

TEST_F(DomainsTest, RelationalProjectCountScan) {
  ASSERT_TRUE(world_.catalog->CreateTable(rel::Schema{"t", {"k", "v"}}).ok());
  ASSERT_TRUE(world_.catalog->Insert("t", {Value("a"), Value(1)}).ok());
  ASSERT_TRUE(world_.catalog->Insert("t", {Value("a"), Value(2)}).ok());
  EXPECT_EQ(Unwrap(Call("rel", "project", {Value("t"), Value("k")}))
                .values.size(),
            1u);  // deduplicated
  EXPECT_EQ(Unwrap(Call("rel", "count", {Value("t")})).values[0], Value(2));
  EXPECT_EQ(Unwrap(Call("rel", "scan", {Value("t")})).values.size(), 2u);
}

TEST_F(DomainsTest, SpatialRangeAndDistance) {
  // Default map "dcareamap" centered at (500, 500).
  DcaResult in_range = Unwrap(Call(
      "spatial", "range",
      {Value("dcareamap"), Value(550.0), Value(500.0), Value(100.0)}));
  EXPECT_EQ(in_range.values, (std::vector<Value>{Value(true)}));

  DcaResult out_of_range = Unwrap(Call(
      "spatial", "range",
      {Value("dcareamap"), Value(700.0), Value(500.0), Value(100.0)}));
  EXPECT_TRUE(out_of_range.values.empty());

  DcaResult d = Unwrap(Call(
      "spatial", "distance", {Value(0.0), Value(0.0), Value(3.0), Value(4.0)}));
  EXPECT_EQ(d.values[0], Value(5.0));
}

TEST_F(DomainsTest, SpatialGeocodePinnedAndSynthetic) {
  std::vector<Value> addr = {Value(1), Value("st"), Value("ct"), Value("st"),
                             Value(20001)};
  world_.handles.spatial->AddAddress(dom::SpatialDomain::AddressKey(addr),
                                     123.0, 456.0);
  DcaResult r = Unwrap(Call("spatial", "locateaddress", addr));
  ASSERT_EQ(r.values.size(), 1u);
  EXPECT_EQ(r.values[0].as_list()[0], Value(123.0));

  // Unpinned addresses geocode deterministically.
  std::vector<Value> other = {Value(2), Value("st"), Value("ct"), Value("st"),
                              Value(20002)};
  DcaResult a = Unwrap(Call("spatial", "locateaddress", other));
  DcaResult b = Unwrap(Call("spatial", "locateaddress", other));
  EXPECT_EQ(a.values, b.values);
}

TEST_F(DomainsTest, FaceDomainLifecycle) {
  dom::FaceDomain* faces = world_.handles.facextract;
  ASSERT_TRUE(faces->AddPerson("alice", 1).ok());
  ASSERT_TRUE(faces->AddPerson("bob", 2).ok());
  std::string f1 =
      Unwrap(faces->AddSurveillanceFace("surveillance", "ph1", 1));
  std::string f2 =
      Unwrap(faces->AddSurveillanceFace("surveillance", "ph1", 2));

  DcaResult seg =
      Unwrap(Call("faces", "segmentface", {Value("surveillance")}));
  EXPECT_EQ(seg.values.size(), 2u);

  std::string lib1 = Unwrap(faces->AddPerson("alice_dup", 1));
  // matchface: same underlying face id.
  EXPECT_EQ(Unwrap(Call("faces", "matchface", {Value(f1), Value(lib1)}))
                .values.size(),
            1u);
  EXPECT_TRUE(Unwrap(Call("faces", "matchface", {Value(f2), Value(lib1)}))
                  .values.empty());

  // findname resolves surveillance files through the face id.
  DcaResult names = Unwrap(Call("faces", "findname", {Value(f2)}));
  EXPECT_EQ(names.values, (std::vector<Value>{Value("bob")}));

  // findface returns the library files of a person.
  DcaResult ff = Unwrap(Call("faces", "findface", {Value("alice")}));
  EXPECT_EQ(ff.values.size(), 1u);

  // Removal is versioned: segmentface at the old tick still sees the face.
  int64_t t0 = world_.catalog->clock().now();
  world_.catalog->clock().Advance();
  ASSERT_TRUE(faces->RemoveSurveillanceFace("surveillance", "ph1", 1).ok());
  EXPECT_EQ(Unwrap(Call("faces", "segmentface", {Value("surveillance")}))
                .values.size(),
            1u);
  EXPECT_EQ(Unwrap(world_.domains->EvaluateAt("faces", "segmentface",
                                              {Value("surveillance")}, t0))
                .values.size(),
            2u);
}

TEST_F(DomainsTest, TextDomain) {
  dom::TextDomain* text = world_.handles.text;
  ASSERT_TRUE(text->AddDocument("d1", "the quick brown fox").ok());
  ASSERT_TRUE(text->AddDocument("d2", "lazy dog").ok());

  EXPECT_EQ(Unwrap(Call("text", "match", {Value("quick")})).values,
            (std::vector<Value>{Value("d1")}));
  EXPECT_EQ(Unwrap(Call("text", "words", {Value("d1")})).values.size(), 4u);
  ASSERT_TRUE(text->RemoveDocument("d1", "the quick brown fox").ok());
  EXPECT_TRUE(Unwrap(Call("text", "match", {Value("quick")})).values.empty());
}

TEST_F(DomainsTest, ManagerDeltaComputesFPlusFMinus) {
  ASSERT_TRUE(world_.catalog->CreateTable(rel::Schema{"t", {"k"}}).ok());
  ASSERT_TRUE(world_.catalog->Insert("t", {Value("a")}).ok());
  int64_t t0 = world_.catalog->clock().now();
  world_.catalog->clock().Advance();
  ASSERT_TRUE(world_.catalog->Insert("t", {Value("b")}).ok());
  ASSERT_TRUE(world_.catalog->Delete("t", {Value("a")}).ok());
  int64_t t1 = world_.catalog->clock().now();

  dom::FunctionDelta delta = Unwrap(world_.domains->Delta(
      "rel", "scan", {Value("t")}, t0, t1));
  ASSERT_EQ(delta.added.size(), 1u);
  ASSERT_EQ(delta.removed.size(), 1u);
  EXPECT_EQ(delta.added[0].as_list()[0], Value("b"));
  EXPECT_EQ(delta.removed[0].as_list()[0], Value("a"));
}

TEST_F(DomainsTest, ManagerErrors) {
  EXPECT_EQ(Call("nodomain", "f", {}).status().code(), StatusCode::kNotFound);
  // Delta over interval-valued calls is rejected.
  EXPECT_EQ(world_.domains->Delta("arith", "greater", {Value(1)}, 0, 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DomainsTest, CallCountTracksEvaluations) {
  world_.domains->ResetCallCount();
  ASSERT_TRUE(Call("arith", "plus", {Value(1), Value(2)}).ok());
  ASSERT_TRUE(Call("arith", "plus", {Value(1), Value(3)}).ok());
  EXPECT_EQ(world_.domains->call_count(), 2);
}

}  // namespace
}  // namespace mmv
