// Unit tests for the workload generators themselves (the benchmarks'
// foundations must be trustworthy).

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/generators.h"
#include "workload/law_enforcement.h"

namespace mmv {
namespace {

using testutil::TestWorld;
using testutil::Unwrap;

TEST(GeneratorTest, ChainShape) {
  Program p = workload::MakeChain(3, 5);
  // 5 facts + 3 rules.
  EXPECT_EQ(p.size(), 8u);
  size_t facts = 0;
  for (const Clause& c : p.clauses()) facts += c.IsFact() ? 1 : 0;
  EXPECT_EQ(facts, 5u);
  EXPECT_FALSE(p.IsRecursive());
}

TEST(GeneratorTest, MultiChainIsIndependent) {
  Program p = workload::MakeMultiChain(3, 2, 2);
  // Predicates of different chains never co-occur in one clause.
  for (const Clause& c : p.clauses()) {
    for (const BodyAtom& b : c.body) {
      EXPECT_EQ(c.head_pred.name().substr(0, 2), b.pred.name().substr(0, 2));
    }
  }
  EXPECT_EQ(p.size(), 3u * (2 + 2));
}

TEST(GeneratorTest, TcIsRecursive) {
  Program p = workload::MakeTransitiveClosure(workload::ChainEdges(3));
  EXPECT_TRUE(p.IsRecursive());
}

TEST(GeneratorTest, ChainEdges) {
  EXPECT_TRUE(workload::ChainEdges(1).empty());
  auto e = workload::ChainEdges(4);
  EXPECT_EQ(e, (std::vector<std::pair<int, int>>{{0, 1}, {1, 2}, {2, 3}}));
}

TEST(GeneratorTest, RandomDagEdgesAreForwardAndUnique) {
  Rng rng(5);
  auto edges = workload::RandomDagEdges(&rng, 10, 20);
  std::set<std::pair<int, int>> seen;
  for (auto [a, b] : edges) {
    EXPECT_LT(a, b);  // forward edges only: acyclic by construction
    EXPECT_TRUE(seen.insert({a, b}).second) << "duplicate edge";
  }
  // The backbone chain is always included.
  for (int i = 0; i + 1 < 10; ++i) {
    EXPECT_TRUE(seen.count({i, i + 1}));
  }
}

TEST(GeneratorTest, DeleteFactRequestWraps) {
  Program p = workload::MakeChain(2, 3);
  maint::UpdateAtom r0 = workload::DeleteFactRequest(p, 0);
  maint::UpdateAtom r3 = workload::DeleteFactRequest(p, 3);  // wraps to 0
  EXPECT_EQ(r0.pred, "p0");
  EXPECT_EQ(r0.constraint.ToString(), r3.constraint.ToString());
}

TEST(GeneratorTest, RandomProgramsAreAcyclicAndMaterializable) {
  TestWorld w = TestWorld::Make();
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    Program p = workload::MakeRandomProgram(&rng, {});
    EXPECT_FALSE(p.IsRecursive()) << "seed " << seed;
    EXPECT_TRUE(Materialize(p, w.domains.get()).ok()) << "seed " << seed;
  }
}

TEST(GeneratorTest, IntervalChainInstanceMath) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeIntervalChain(/*depth=*/2, /*width=*/2,
                                          /*span=*/10);
  View v = testutil::MaterializeOrDie(p, w.domains.get());
  // b0: 2 ranges x 10 instances; b1 knocks out point 0; b2 knocks out 1.
  auto b0 = testutil::InstancesOf(v, "b0", w.domains.get());
  auto b2 = testutil::InstancesOf(v, "b2", w.domains.get());
  EXPECT_EQ(b0.size(), 20u);
  EXPECT_EQ(b2.size(), 18u);  // 0 and 1 removed from the first range
}

TEST(LawEnforcementGenTest, OptionKnobsRespected) {
  workload::LawEnforcementOptions opts;
  opts.num_people = 5;
  opts.num_photos = 2;
  opts.faces_per_photo = 2;
  opts.employee_prob = 1.0;  // everyone employed
  opts.near_dc_prob = 0.0;   // nobody near DC
  opts.seed = 1;
  auto s = Unwrap(workload::MakeLawEnforcement(opts));
  EXPECT_EQ(s->people.size(), 5u);
  EXPECT_EQ(s->employees.size(), 5u);
  EXPECT_TRUE(s->near_dc.empty());
  // Nobody near DC -> no suspects regardless of photos.
  EXPECT_TRUE(s->expected_suspects.empty());
  // Each photo contains the target + 1 other: at most 2 distinct others.
  EXPECT_LE(s->expected_seenwith.size(), 2u);
}

TEST(LawEnforcementGenTest, GroundTruthConsistency) {
  workload::LawEnforcementOptions opts;
  opts.seed = 33;
  auto s = Unwrap(workload::MakeLawEnforcement(opts));
  // suspects = seenwith  intersect near_dc intersect employees, by
  // construction.
  for (const std::string& name : s->expected_suspects) {
    EXPECT_TRUE(s->expected_seenwith.count(name));
    EXPECT_TRUE(s->near_dc.count(name));
    EXPECT_TRUE(s->employees.count(name));
  }
}

}  // namespace
}  // namespace mmv
