// Unit tests for Program, Clause, Support and View containers.

#include <gtest/gtest.h>

#include "test_util.h"

namespace mmv {
namespace {

using testutil::ParseOrDie;

TEST(ProgramTest, ClauseNumberingIsOneBased) {
  Program p = ParseOrDie("a(X) <- X = 1. b(X) <- a(X).");
  EXPECT_EQ(p.clauses()[0].number, 1);
  EXPECT_EQ(p.clauses()[1].number, 2);
  EXPECT_EQ(p.ClauseByNumber(1)->head_pred, "a");
  EXPECT_EQ(p.ClauseByNumber(2)->head_pred, "b");
  EXPECT_EQ(p.ClauseByNumber(0), nullptr);
  EXPECT_EQ(p.ClauseByNumber(3), nullptr);
}

TEST(ProgramTest, ClausesForIndex) {
  Program p = ParseOrDie("a(X) <- X = 1. a(X) <- X = 2. b(X) <- a(X).");
  EXPECT_EQ(p.ClausesFor("a").size(), 2u);
  EXPECT_EQ(p.ClausesFor("b").size(), 1u);
  EXPECT_TRUE(p.ClausesFor("zzz").empty());
}

TEST(ProgramTest, HeadPredicates) {
  Program p = ParseOrDie("a(X) <- X = 1. b(X) <- a(X). a(X) <- b(X).");
  EXPECT_EQ(p.HeadPredicates(), (std::vector<Symbol>{"a", "b"}));
}

TEST(ProgramTest, RecursionDetection) {
  EXPECT_FALSE(ParseOrDie("a(X) <- X = 1. b(X) <- a(X).").IsRecursive());
  EXPECT_TRUE(
      ParseOrDie("a(X) <- X = 1. b(X) <- a(X). a(X) <- b(X).").IsRecursive());
  EXPECT_TRUE(ParseOrDie("a(X) <- a(X).").IsRecursive());
}

TEST(ClauseTest, VariablesInOrder) {
  Program p = ParseOrDie("h(X, Y) <- X = 1 & in(Z, arith:greater(Y)) || b(W).");
  std::vector<VarId> vars = p.clauses()[0].Variables();
  EXPECT_EQ(vars.size(), 4u);  // X, Y, Z, W
}

TEST(ClauseTest, RenameIsFreshAndStructurePreserving) {
  Program p = ParseOrDie("h(X, Y) <- X != Y || b(X), c(Y).");
  const Clause& c = p.clauses()[0];
  Clause r = c.Rename(p.factory());
  // Same shape.
  EXPECT_EQ(r.head_pred, c.head_pred);
  EXPECT_EQ(r.body.size(), c.body.size());
  EXPECT_EQ(r.number, c.number);
  // All variables fresh.
  for (VarId v : r.Variables()) {
    for (VarId w : c.Variables()) EXPECT_NE(v, w);
  }
  // Sharing preserved: head X == body b's arg.
  EXPECT_EQ(r.head_args[0], r.body[0].args[0]);
  EXPECT_EQ(r.head_args[1], r.body[1].args[0]);
}

TEST(SupportTest, EqualityHashDepthCount) {
  Support leaf3(3);
  Support s1(2, {leaf3});
  Support s2(2, {Support(3)});
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.Hash(), s2.Hash());
  EXPECT_NE(s1, Support(2, {Support(4)}));
  EXPECT_NE(s1, leaf3);

  Support nested(4, {s1, leaf3});
  EXPECT_EQ(nested.NodeCount(), 4u);
  EXPECT_EQ(nested.Depth(), 3u);
  EXPECT_EQ(nested.ToString(), "<4, <2, <3>>, <3>>");
}

TEST(ViewTest, AddQueryRemove) {
  View v;
  ViewAtom a;
  a.pred = "p";
  a.support = Support(1);
  v.Add(a);
  ViewAtom b;
  b.pred = "q";
  b.support = Support(2);
  v.Add(b);

  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.AtomsFor("p"), (std::vector<size_t>{0}));
  EXPECT_TRUE(v.HasSupport(Support(1)));
  EXPECT_FALSE(v.HasSupport(Support(9)));

  v.MarkAll(true);
  EXPECT_TRUE(v.atoms()[0].marked);

  size_t removed = v.RemoveIf(
      [](const ViewAtom& atom) { return atom.pred == "p"; });
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.atoms()[0].pred, "q");
}

TEST(ViewTest, AccountingHelpers) {
  View v;
  ViewAtom a;
  a.pred = "p";
  a.constraint.Add(
      Primitive::Eq(Term::Var(0), Term::Const(Value(1))));
  a.support = Support(1, {Support(2)});
  v.Add(a);
  EXPECT_GT(v.ApproxBytes(), sizeof(View));
  EXPECT_EQ(v.TotalLiterals(), 1u);
  EXPECT_NE(v.ToString().find("p("), std::string::npos);
}

}  // namespace
}  // namespace mmv
