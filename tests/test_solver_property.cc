// Property-based solver validation: random constraints over a small finite
// universe are checked against a brute-force ground evaluator. The solver
// must never report kUnsat for a constraint with a witness, and never
// report kSat for one without (kSatDeferred is allowed to be wrong only
// towards "sat" — it flags undecided literals, which the generator below
// avoids by keeping every domain call decidable).

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>

#include "common/rng.h"
#include "constraint/simplify.h"
#include "constraint/solver.h"

namespace mmv {
namespace {

constexpr int kUniverseLo = 0;
constexpr int kUniverseHi = 7;  // brute force explores [0,7]^vars
constexpr int kMaxVars = 3;

// A deterministic finite evaluator: three scripted set-valued functions.
class GridEvaluator : public DcaEvaluator {
 public:
  Result<DcaResult> Evaluate(const std::string& domain,
                             const std::string& function,
                             const std::vector<Value>& args) override {
    if (domain != "g") return Status::NotFound("no domain " + domain);
    if (function == "evens") {
      return DcaResult::Finite({Value(0), Value(2), Value(4), Value(6)});
    }
    if (function == "small") {
      return DcaResult::Finite({Value(0), Value(1), Value(2)});
    }
    if (function == "succ") {
      if (args.size() != 1 || !args[0].is_int()) {
        return Status::TypeError("succ(int)");
      }
      return DcaResult::Finite({Value(args[0].as_int() + 1)});
    }
    if (function == "ge") {
      if (args.size() != 1 || !args[0].is_numeric()) {
        return Status::TypeError("ge(num)");
      }
      Interval i;
      i.integral = true;
      i.lo = args[0].numeric();
      return DcaResult::Of(i);
    }
    return Status::NotFound("no function " + function);
  }

  // Ground truth for the brute-force checker.
  static bool Member(const std::string& function, int64_t x,
                     const std::vector<int64_t>& args) {
    if (function == "evens") return x >= 0 && x <= 6 && x % 2 == 0;
    if (function == "small") return x >= 0 && x <= 2;
    if (function == "succ") return x == args.at(0) + 1;
    if (function == "ge") return x >= args.at(0);
    return false;
  }
};

// Generates a random constraint over variables 0..n-1.
Constraint RandomConstraint(Rng* rng, int n, int depth) {
  auto random_term = [&](bool allow_const) -> Term {
    if (allow_const && rng->Chance(0.4)) {
      return Term::Const(Value(rng->Int(kUniverseLo - 1, kUniverseHi + 1)));
    }
    return Term::Var(static_cast<VarId>(rng->Int(0, n - 1)));
  };
  auto random_prim = [&]() -> Primitive {
    switch (rng->Int(0, 5)) {
      case 0:
        return Primitive::Eq(random_term(false), random_term(true));
      case 1:
        return Primitive::Neq(random_term(false), random_term(true));
      case 2: {
        CmpOp op = static_cast<CmpOp>(rng->Int(0, 3));
        return Primitive::Cmp(random_term(false), op, random_term(true));
      }
      case 3: {
        const char* fns[] = {"evens", "small"};
        return Primitive::In(random_term(false),
                             DomainCall{"g", fns[rng->Int(0, 1)], {}});
      }
      case 4:
        return Primitive::In(
            random_term(false),
            DomainCall{"g", "succ", {random_term(true)}});
      default:
        return Primitive::In(
            random_term(false),
            DomainCall{"g", "ge",
                       {Term::Const(Value(rng->Int(0, kUniverseHi)))}});
    }
  };

  Constraint c;
  int prims = static_cast<int>(rng->Int(1, 4));
  for (int i = 0; i < prims; ++i) c.Add(random_prim());
  if (depth > 0) {
    int blocks = static_cast<int>(rng->Int(0, 2));
    for (int b = 0; b < blocks; ++b) {
      Constraint inner = RandomConstraint(rng, n, depth - 1);
      if (!inner.is_true() && !inner.is_false()) {
        c.AddNot(Constraint::Negate(inner));
      }
    }
  }
  return c;
}

// Brute-force ground truth over assignments [lo,hi]^vars.
bool EvalPrimGround(const Primitive& p,
                    const std::map<VarId, int64_t>& env) {
  auto val = [&](const Term& t) -> Value {
    if (t.is_const()) return t.constant();
    return Value(env.at(t.var()));
  };
  switch (p.kind) {
    case PrimKind::kEq:
      return val(p.lhs) == val(p.rhs);
    case PrimKind::kNeq:
      return !(val(p.lhs) == val(p.rhs));
    case PrimKind::kCmp: {
      Value a = val(p.lhs), b = val(p.rhs);
      if (!a.is_numeric() || !b.is_numeric()) return false;
      switch (p.op) {
        case CmpOp::kLt:
          return a.numeric() < b.numeric();
        case CmpOp::kLe:
          return a.numeric() <= b.numeric();
        case CmpOp::kGt:
          return a.numeric() > b.numeric();
        case CmpOp::kGe:
          return a.numeric() >= b.numeric();
      }
      return false;
    }
    case PrimKind::kIn:
    case PrimKind::kNotIn: {
      Value x = val(p.lhs);
      if (!x.is_int()) return p.kind == PrimKind::kNotIn;
      std::vector<int64_t> args;
      for (const Term& t : p.call.args) {
        Value v = val(t);
        if (!v.is_int()) return p.kind == PrimKind::kNotIn;
        args.push_back(v.as_int());
      }
      bool member = GridEvaluator::Member(p.call.function, x.as_int(), args);
      return p.kind == PrimKind::kIn ? member : !member;
    }
  }
  return false;
}

bool EvalBlockGround(const NotBlock& b, const std::map<VarId, int64_t>& env);

bool EvalConstraintGround(const Constraint& c,
                          const std::map<VarId, int64_t>& env) {
  if (c.is_false()) return false;
  for (const Primitive& p : c.prims()) {
    if (!EvalPrimGround(p, env)) return false;
  }
  for (const NotBlock& b : c.nots()) {
    if (EvalBlockGround(b, env)) return false;  // body true -> not() false
  }
  return true;
}

bool EvalBlockGround(const NotBlock& b, const std::map<VarId, int64_t>& env) {
  for (const Primitive& p : b.prims) {
    if (!EvalPrimGround(p, env)) return false;
  }
  for (const NotBlock& i : b.inner) {
    if (EvalBlockGround(i, env)) return false;
  }
  return true;
}

// Does any assignment over the grid satisfy c? (Variables range over the
// finite universe only — the solver explores an unbounded domain, so a
// solver "sat" with no grid witness is NOT automatically a bug; we check
// implications in the sound directions only.)
bool BruteForceSatOnGrid(const Constraint& c, const std::vector<VarId>& vars) {
  std::map<VarId, int64_t> env;
  std::function<bool(size_t)> rec = [&](size_t i) -> bool {
    if (i == vars.size()) return EvalConstraintGround(c, env);
    for (int64_t v = kUniverseLo; v <= kUniverseHi; ++v) {
      env[vars[i]] = v;
      if (rec(i + 1)) return true;
    }
    return false;
  };
  return rec(0);
}

class SolverGridProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverGridProperty, SolveAgreesWithBruteForce) {
  Rng rng(GetParam());
  GridEvaluator eval;
  Solver solver(&eval);

  for (int trial = 0; trial < 60; ++trial) {
    int n = static_cast<int>(rng.Int(1, kMaxVars));
    Constraint c = RandomConstraint(&rng, n, 2);
    std::vector<VarId> vars = c.Variables();

    bool grid_sat = BruteForceSatOnGrid(c, vars);
    SolveOutcome o = solver.Solve(c);
    ASSERT_NE(o, SolveOutcome::kError) << solver.last_status().ToString();

    // Soundness: a grid witness contradicts kUnsat.
    if (grid_sat) {
      EXPECT_NE(o, SolveOutcome::kUnsat)
          << "seed " << GetParam() << " trial " << trial << "\nconstraint: "
          << c.ToString();
    }
    // kSat claims a solution exists somewhere (possibly off-grid); verify
    // only when the constraint confines all variables to the grid, which
    // our generator guarantees whenever an in(X, g:small/evens) literal
    // covers each variable. Cheap sufficient check: if brute force says
    // unsat AND some grid-confining literal exists per variable, kSat is a
    // bug. We approximate by re-checking on a wider grid.
    if (!grid_sat && o == SolveOutcome::kSat) {
      // Widen the universe; the generator only uses constants in
      // [-1, kUniverseHi + 1], so [-3, kUniverseHi + 3] catches boundary
      // witnesses.
      std::map<VarId, int64_t> env;
      std::function<bool(size_t)> rec = [&](size_t i) -> bool {
        if (i == vars.size()) return EvalConstraintGround(c, env);
        for (int64_t v = kUniverseLo - 3; v <= kUniverseHi + 3; ++v) {
          env[vars[i]] = v;
          if (rec(i + 1)) return true;
        }
        return false;
      };
      EXPECT_TRUE(rec(0)) << "solver says kSat but no witness in widened "
                             "universe\nseed "
                          << GetParam() << " trial " << trial
                          << "\nconstraint: " << c.ToString();
    }
  }
}

// Brute-force satisfiability on an explicitly given range.
bool BruteForceSatOnRange(const Constraint& c, const std::vector<VarId>& vars,
                          int64_t lo, int64_t hi) {
  std::map<VarId, int64_t> env;
  std::function<bool(size_t)> rec = [&](size_t i) -> bool {
    if (i == vars.size()) return EvalConstraintGround(c, env);
    for (int64_t v = lo; v <= hi; ++v) {
      env[vars[i]] = v;
      if (rec(i + 1)) return true;
    }
    return false;
  };
  return rec(0);
}

TEST_P(SolverGridProperty, SimplifyPreservesSatisfiability) {
  // SimplifyAtom dissolves equalities into the head, so it preserves the
  // *solution set projected onto the head*, not pointwise evaluation of
  // free variables; with an empty head the preserved property is
  // satisfiability. The generator's constants lie in [-1, kUniverseHi+1],
  // so a widened grid [-3, kUniverseHi+3] sees every relevant witness.
  Rng rng(GetParam() * 7919 + 13);

  for (int trial = 0; trial < 60; ++trial) {
    int n = static_cast<int>(rng.Int(1, kMaxVars));
    Constraint c = RandomConstraint(&rng, n, 2);
    SimplifiedAtom s = SimplifyAtom({}, c);

    bool orig_sat = BruteForceSatOnRange(c, c.Variables(), kUniverseLo - 3,
                                         kUniverseHi + 3);
    bool simp_sat =
        BruteForceSatOnRange(s.constraint, s.constraint.Variables(),
                             kUniverseLo - 3, kUniverseHi + 3);
    EXPECT_EQ(orig_sat, simp_sat)
        << "seed " << GetParam() << " trial " << trial << "\noriginal:   "
        << c.ToString() << "\nsimplified: " << s.constraint.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverGridProperty,
                         ::testing::Range(uint64_t{100}, uint64_t{112}));

}  // namespace
}  // namespace mmv
