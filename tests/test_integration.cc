// Cross-feature integration tests: serialization x maintenance x external
// updates x call cache, combined the way a long-lived deployment would.

#include <gtest/gtest.h>

#include "maintenance/batch.h"
#include "maintenance/external.h"
#include "parser/view_io.h"
#include "query/query.h"
#include "test_util.h"

namespace mmv {
namespace {

using testutil::Instances;
using testutil::MaterializeOrDie;
using testutil::ParseOrDie;
using testutil::ParseUpdate;
using testutil::TestWorld;
using testutil::Unwrap;

TEST(IntegrationTest, TextDomainMediatorLifecycle) {
  TestWorld w = TestWorld::Make();
  ASSERT_TRUE(w.handles.text->AddDocument("d1", "alpha beta").ok());
  ASSERT_TRUE(w.handles.text->AddDocument("d2", "beta gamma").ok());
  Program p = ParseOrDie(R"(
    has_beta(D) <- in(D, text:match("beta")).
    pair(D, E) <- has_beta(D) & has_beta(E) & D != E.
  )");
  View v = MaterializeOrDie(p, w.domains.get());
  EXPECT_EQ(Instances(v, w.domains.get()),
            (std::set<std::string>{"has_beta(\"d1\")", "has_beta(\"d2\")",
                                   "pair(\"d1\", \"d2\")",
                                   "pair(\"d2\", \"d1\")"}));

  // Delete one document flag; the joins collapse.
  maint::UpdateAtom req = ParseUpdate("has_beta(D) <- D = \"d1\".", &p);
  ASSERT_TRUE(maint::DeleteStDel(p, &v, req, w.domains.get()).ok());
  EXPECT_EQ(Instances(v, w.domains.get()),
            (std::set<std::string>{"has_beta(\"d2\")"}));
}

TEST(IntegrationTest, SerializeThenExternalUpdateUnderWp) {
  // A W_P view survives serialization AND still tracks external changes
  // at query time after reload.
  TestWorld w = TestWorld::Make();
  ASSERT_TRUE(w.catalog->CreateTable(rel::Schema{"t", {"k"}}).ok());
  ASSERT_TRUE(w.catalog->Insert("t", {Value("a")}).ok());
  Program p = ParseOrDie(R"(keys(K) <- in(R, rel:scan("t")) & in(K, tuple:get(R, 0)).)");

  FixpointOptions wp;
  wp.op = OperatorKind::kWp;
  View view = Unwrap(Materialize(p, w.domains.get(), wp));
  View loaded =
      Unwrap(parser::DeserializeView(parser::SerializeView(view), &p));

  // Mutate the source after the snapshot was taken.
  w.catalog->clock().Advance();
  ASSERT_TRUE(w.catalog->Insert("t", {Value("b")}).ok());

  EXPECT_EQ(Instances(loaded, w.domains.get()),
            (std::set<std::string>{"keys(\"a\")", "keys(\"b\")"}));
}

TEST(IntegrationTest, BatchAfterReloadMatchesBatchBeforeSerialize) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- in(X, arith:between(0, 4)). b(X) <- a(X).");
  View original = MaterializeOrDie(p, w.domains.get());

  std::vector<maint::Update> updates = {
      maint::Update::Delete(ParseUpdate("a(X) <- X = 1.", &p)),
      maint::Update::Insert(ParseUpdate("a(X) <- X = 9.", &p)),
  };

  View direct = original;
  ASSERT_TRUE(
      maint::ApplyBatch(p, &direct, updates, w.domains.get()).ok());

  View reloaded = Unwrap(
      parser::DeserializeView(parser::SerializeView(original), &p));
  ASSERT_TRUE(
      maint::ApplyBatch(p, &reloaded, updates, w.domains.get()).ok());

  EXPECT_EQ(Instances(direct, w.domains.get()),
            Instances(reloaded, w.domains.get()));
}

TEST(IntegrationTest, CallCacheSpeedsHistoricalQueriesWithoutChangingThem) {
  TestWorld w = TestWorld::Make();
  ASSERT_TRUE(w.catalog->CreateTable(rel::Schema{"t", {"k"}}).ok());
  ASSERT_TRUE(w.catalog->Insert("t", {Value(1)}).ok());
  w.catalog->clock().Advance();
  ASSERT_TRUE(w.catalog->Insert("t", {Value(2)}).ok());

  auto eval_at = [&](int64_t tick) {
    auto r = w.domains->EvaluateAt("rel", "scan", {Value("t")}, tick);
    return r.ok() ? r->values.size() : size_t{999};
  };

  w.domains->EnableCallCache(true);
  EXPECT_EQ(eval_at(0), 1u);
  EXPECT_EQ(eval_at(0), 1u);  // cache hit
  EXPECT_GE(w.domains->cache_hits(), 1);
  w.domains->EnableCallCache(false);
  EXPECT_EQ(eval_at(0), 1u);  // identical answer uncached
}

TEST(IntegrationTest, MaintainedViewSurvivesManyRounds) {
  // Soak: alternate external updates and view updates for several rounds;
  // the W_P view plus StDel must stay consistent with a fresh recompute.
  TestWorld w = TestWorld::Make();
  ASSERT_TRUE(w.catalog->CreateTable(rel::Schema{"src", {"v"}}).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(w.catalog->Insert("src", {Value(i)}).ok());
  }
  Program p = ParseOrDie(R"(
    item(V) <- in(R, rel:scan("src")) & in(V, tuple:get(R, 0)).
    keep(V) <- item(V).
  )");
  FixpointOptions wp;
  wp.op = OperatorKind::kWp;
  View view = Unwrap(Materialize(p, w.domains.get(), wp));

  for (int round = 0; round < 3; ++round) {
    // External change.
    w.catalog->clock().Advance();
    ASSERT_TRUE(
        w.catalog->Insert("src", {Value(100 + round)}).ok());
    // View update: retract one kept value.
    maint::UpdateAtom req = ParseUpdate(
        "keep(V) <- V = " + std::to_string(round) + ".", &p);
    ASSERT_TRUE(maint::DeleteStDel(p, &view, req, w.domains.get()).ok());
  }

  // Items reflect the current table; keeps lack the three retracted values.
  auto insts = Instances(view, w.domains.get());
  EXPECT_EQ(insts.count("item(0)"), 1u);
  EXPECT_EQ(insts.count("item(102)"), 1u);
  EXPECT_EQ(insts.count("keep(0)"), 0u);
  EXPECT_EQ(insts.count("keep(1)"), 0u);
  EXPECT_EQ(insts.count("keep(2)"), 0u);
  EXPECT_EQ(insts.count("keep(3)"), 1u);
  EXPECT_EQ(insts.count("keep(102)"), 1u);
}

}  // namespace
}  // namespace mmv
