// Unit tests for the constraint solver.

#include <gtest/gtest.h>

#include "constraint/solver.h"

namespace mmv {
namespace {

Term V(VarId v) { return Term::Var(v); }
Term C(int64_t c) { return Term::Const(Value(c)); }
Term S(const char* s) { return Term::Const(Value(s)); }

// A scripted evaluator: finite sets and intervals by function name.
class FakeEvaluator : public DcaEvaluator {
 public:
  Result<DcaResult> Evaluate(const std::string& domain,
                             const std::string& function,
                             const std::vector<Value>& args) override {
    calls++;
    if (domain != "fake") {
      return Status::NotFound("no domain " + domain);
    }
    if (function == "set123") {
      return DcaResult::Finite({Value(1), Value(2), Value(3)});
    }
    if (function == "empty") return DcaResult::Finite({});
    if (function == "greater") {
      Interval i;
      i.integral = true;
      i.lo = args.at(0).numeric();
      i.lo_strict = true;
      return DcaResult::Of(i);
    }
    if (function == "unknown") return DcaResult::Unknown();
    if (function == "double_of") {
      return DcaResult::Finite({Value(args.at(0).numeric() * 2)});
    }
    return Status::NotFound("no function " + function);
  }
  int calls = 0;
};

class SolverTest : public ::testing::Test {
 protected:
  FakeEvaluator eval_;
  Solver solver_{&eval_};

  SolveOutcome Solve(const Constraint& c) { return solver_.Solve(c); }
};

TEST_F(SolverTest, TrueAndFalse) {
  EXPECT_EQ(Solve(Constraint::True()), SolveOutcome::kSat);
  EXPECT_EQ(Solve(Constraint::False()), SolveOutcome::kUnsat);
}

TEST_F(SolverTest, EqualityPropagation) {
  Constraint c;
  c.Add(Primitive::Eq(V(0), V(1)));
  c.Add(Primitive::Eq(V(1), C(5)));
  EXPECT_EQ(Solve(c), SolveOutcome::kSat);

  c.Add(Primitive::Eq(V(0), C(6)));  // conflict through the chain
  EXPECT_EQ(Solve(c), SolveOutcome::kUnsat);
}

TEST_F(SolverTest, DisequalityBasic) {
  Constraint c;
  c.Add(Primitive::Eq(V(0), C(5)));
  c.Add(Primitive::Neq(V(0), C(5)));
  EXPECT_EQ(Solve(c), SolveOutcome::kUnsat);

  Constraint ok;
  ok.Add(Primitive::Eq(V(0), C(5)));
  ok.Add(Primitive::Neq(V(0), C(6)));
  EXPECT_EQ(Solve(ok), SolveOutcome::kSat);
}

TEST_F(SolverTest, VarVarDisequalityViaUnification) {
  Constraint c;
  c.Add(Primitive::Eq(V(0), V(1)));
  c.Add(Primitive::Neq(V(0), V(1)));
  EXPECT_EQ(Solve(c), SolveOutcome::kUnsat);
}

TEST_F(SolverTest, IntervalReasoning) {
  Constraint c;
  c.Add(Primitive::Cmp(V(0), CmpOp::kGe, C(3)));
  c.Add(Primitive::Cmp(V(0), CmpOp::kLe, C(5)));
  EXPECT_EQ(Solve(c), SolveOutcome::kSat);

  c.Add(Primitive::Cmp(V(0), CmpOp::kLt, C(3)));
  EXPECT_EQ(Solve(c), SolveOutcome::kUnsat);
}

TEST_F(SolverTest, OpenIntervalPointIsEmpty) {
  Constraint c;
  c.Add(Primitive::Cmp(V(0), CmpOp::kGt, C(3)));
  c.Add(Primitive::Cmp(V(0), CmpOp::kLt, C(4)));
  // Real interval (3, 4) is nonempty.
  EXPECT_EQ(Solve(c), SolveOutcome::kSat);
}

TEST_F(SolverTest, IntegralOpenIntervalIsEmpty) {
  Constraint c;
  DomainCall gc{"fake", "greater", {C(3)}};
  c.Add(Primitive::In(V(0), gc));  // integers > 3
  c.Add(Primitive::Cmp(V(0), CmpOp::kLt, C(4)));
  // No integer in (3, 4).
  EXPECT_EQ(Solve(c), SolveOutcome::kUnsat);
}

TEST_F(SolverTest, ExclusionsCanEmptyIntegralInterval) {
  Constraint c;
  DomainCall gc{"fake", "greater", {C(3)}};
  c.Add(Primitive::In(V(0), gc));
  c.Add(Primitive::Cmp(V(0), CmpOp::kLe, C(5)));  // {4, 5}
  c.Add(Primitive::Neq(V(0), C(4)));
  EXPECT_EQ(Solve(c), SolveOutcome::kSat);  // 5 remains
  c.Add(Primitive::Neq(V(0), C(5)));
  EXPECT_EQ(Solve(c), SolveOutcome::kUnsat);
}

TEST_F(SolverTest, FiniteSetMembership) {
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"fake", "set123", {}}));
  c.Add(Primitive::Eq(V(0), C(2)));
  EXPECT_EQ(Solve(c), SolveOutcome::kSat);

  Constraint miss;
  miss.Add(Primitive::In(V(0), DomainCall{"fake", "set123", {}}));
  miss.Add(Primitive::Eq(V(0), C(9)));
  EXPECT_EQ(Solve(miss), SolveOutcome::kUnsat);
}

TEST_F(SolverTest, EmptySetIsUnsat) {
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"fake", "empty", {}}));
  EXPECT_EQ(Solve(c), SolveOutcome::kUnsat);
}

TEST_F(SolverTest, NotInExcludes) {
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"fake", "set123", {}}));
  c.Add(Primitive::NotInCall(V(0), DomainCall{"fake", "set123", {}}));
  EXPECT_EQ(Solve(c), SolveOutcome::kUnsat);
}

TEST_F(SolverTest, ChainedCallsGroundThroughSingletons) {
  // X = 3, Y in double_of(X) -> Y = 6, then Y = 6 consistent, Y = 7 not.
  Constraint c;
  c.Add(Primitive::Eq(V(0), C(3)));
  c.Add(Primitive::In(V(1), DomainCall{"fake", "double_of", {V(0)}}));
  c.Add(Primitive::Eq(V(1), C(6)));
  EXPECT_EQ(Solve(c), SolveOutcome::kSat);

  Constraint c2;
  c2.Add(Primitive::Eq(V(0), C(3)));
  c2.Add(Primitive::In(V(1), DomainCall{"fake", "double_of", {V(0)}}));
  c2.Add(Primitive::Eq(V(1), C(7)));
  EXPECT_EQ(Solve(c2), SolveOutcome::kUnsat);
}

TEST_F(SolverTest, CandidateSplittingDecidesChains) {
  // X in {1,2,3}, Y in double_of(X), Y = 4 -> X must be 2: satisfiable
  // only via the split on X's candidates.
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"fake", "set123", {}}));
  c.Add(Primitive::In(V(1), DomainCall{"fake", "double_of", {V(0)}}));
  c.Add(Primitive::Eq(V(1), C(4)));
  EXPECT_EQ(Solve(c), SolveOutcome::kSat);

  Constraint c2;
  c2.Add(Primitive::In(V(0), DomainCall{"fake", "set123", {}}));
  c2.Add(Primitive::In(V(1), DomainCall{"fake", "double_of", {V(0)}}));
  c2.Add(Primitive::Eq(V(1), C(7)));  // 7 is not double of 1, 2 or 3
  EXPECT_EQ(Solve(c2), SolveOutcome::kUnsat);
}

TEST_F(SolverTest, UnknownDefers) {
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"fake", "unknown", {}}));
  EXPECT_EQ(Solve(c), SolveOutcome::kSatDeferred);
}

TEST_F(SolverTest, NullEvaluatorDefersEverything) {
  Solver wp(nullptr);
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"fake", "empty", {}}));
  EXPECT_EQ(wp.Solve(c), SolveOutcome::kSatDeferred);
}

TEST_F(SolverTest, EvaluateDcaFalseDefers) {
  SolverOptions opts;
  opts.evaluate_dca = false;
  Solver wp(&eval_, opts);
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"fake", "empty", {}}));
  EXPECT_EQ(wp.Solve(c), SolveOutcome::kSatDeferred);
  EXPECT_EQ(eval_.calls, 0);
}

TEST_F(SolverTest, UnknownDomainIsError) {
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"nodomain", "f", {}}));
  EXPECT_EQ(Solve(c), SolveOutcome::kError);
  EXPECT_FALSE(solver_.last_status().ok());
}

TEST_F(SolverTest, NotBlockSimple) {
  // X = 1 & not(X = 1) is unsat; X = 1 & not(X = 2) is sat.
  Constraint c;
  c.Add(Primitive::Eq(V(0), C(1)));
  NotBlock b;
  b.prims.push_back(Primitive::Eq(V(0), C(1)));
  c.AddNot(b);
  EXPECT_EQ(Solve(c), SolveOutcome::kUnsat);

  Constraint c2;
  c2.Add(Primitive::Eq(V(0), C(1)));
  NotBlock b2;
  b2.prims.push_back(Primitive::Eq(V(0), C(2)));
  c2.AddNot(b2);
  EXPECT_EQ(Solve(c2), SolveOutcome::kSat);
}

TEST_F(SolverTest, NotBlockConjunctionChoices) {
  // X in [0,5] & not(X >= 2 & X <= 3): satisfiable (e.g. X = 0).
  Constraint c;
  c.Add(Primitive::Cmp(V(0), CmpOp::kGe, C(0)));
  c.Add(Primitive::Cmp(V(0), CmpOp::kLe, C(5)));
  NotBlock b;
  b.prims.push_back(Primitive::Cmp(V(0), CmpOp::kGe, C(2)));
  b.prims.push_back(Primitive::Cmp(V(0), CmpOp::kLe, C(3)));
  c.AddNot(b);
  EXPECT_EQ(Solve(c), SolveOutcome::kSat);

  // X in [2,3] & not(X >= 2 & X <= 3): unsat.
  Constraint c2;
  c2.Add(Primitive::Cmp(V(0), CmpOp::kGe, C(2)));
  c2.Add(Primitive::Cmp(V(0), CmpOp::kLe, C(3)));
  c2.AddNot(b);
  EXPECT_EQ(Solve(c2), SolveOutcome::kUnsat);
}

TEST_F(SolverTest, NestedNotBlocks) {
  // not(X = 1 & not(X = 1)) is a tautology: any X works (the body is
  // self-contradictory).
  Constraint c;
  NotBlock self;
  self.prims.push_back(Primitive::Eq(V(0), C(1)));
  NotBlock self_inner;
  self_inner.prims.push_back(Primitive::Eq(V(0), C(1)));
  self.inner.push_back(self_inner);
  c.AddNot(self);
  EXPECT_EQ(Solve(c), SolveOutcome::kSat);

  // X = 1 & not(X = 1 & not(X = 1)): the block body is contradictory, so
  // its negation is a tautology: still satisfiable.
  Constraint c1;
  c1.Add(Primitive::Eq(V(0), C(1)));
  c1.AddNot(self);
  EXPECT_EQ(Solve(c1), SolveOutcome::kSat);

  // X = 1 & not(X = 1 & not(X = 2)): at X = 1 the inner not(X = 2) holds,
  // so the outer body holds, so its negation fails -> unsat.
  Constraint c2;
  c2.Add(Primitive::Eq(V(0), C(1)));
  NotBlock outer;
  outer.prims.push_back(Primitive::Eq(V(0), C(1)));
  NotBlock inner;
  inner.prims.push_back(Primitive::Eq(V(0), C(2)));
  outer.inner.push_back(inner);
  c2.AddNot(outer);
  EXPECT_EQ(Solve(c2), SolveOutcome::kUnsat);

  // X = 3 & not(X = 1 & not(X = 2)): the outer body fails (X != 1): sat.
  Constraint c3;
  c3.Add(Primitive::Eq(V(0), C(3)));
  c3.AddNot(outer);
  EXPECT_EQ(Solve(c3), SolveOutcome::kSat);
}

TEST_F(SolverTest, TypeMismatchComparisonIsUnsat) {
  Constraint c;
  c.Add(Primitive::Eq(V(0), S("abc")));
  c.Add(Primitive::Cmp(V(0), CmpOp::kLe, C(3)));
  EXPECT_EQ(Solve(c), SolveOutcome::kUnsat);
}

TEST_F(SolverTest, StringsAndNumbersDistinct) {
  Constraint c;
  c.Add(Primitive::Eq(V(0), S("1")));
  c.Add(Primitive::Eq(V(0), C(1)));
  EXPECT_EQ(Solve(c), SolveOutcome::kUnsat);
}

TEST_F(SolverTest, StatsAccumulate) {
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"fake", "set123", {}}));
  solver_.ResetStats();
  Solve(c);
  EXPECT_EQ(solver_.stats().solve_calls, 1);
  EXPECT_GE(solver_.stats().dca_evaluations, 1);
}

TEST(IntervalTest, EmptyAndContains) {
  Interval i = Interval::Point(3);
  EXPECT_FALSE(i.Empty());
  EXPECT_TRUE(i.Contains(3));
  EXPECT_FALSE(i.Contains(3.5));

  Interval open;
  open.lo = 1;
  open.hi = 1;
  open.lo_strict = true;
  EXPECT_TRUE(open.Empty());
}

TEST(IntervalTest, IntersectWith) {
  Interval a;
  a.lo = 0;
  a.hi = 10;
  Interval b;
  b.lo = 5;
  b.hi = 15;
  EXPECT_TRUE(a.IntersectWith(b));
  EXPECT_EQ(a.lo, 5);
  EXPECT_EQ(a.hi, 10);

  Interval c;
  c.lo = 11;
  c.hi = 12;
  EXPECT_FALSE(a.IntersectWith(c));
}

TEST(IntervalTest, IntegralCount) {
  Interval i;
  i.integral = true;
  i.lo = 1;
  i.hi = 3;
  EXPECT_EQ(i.IntegralCount().value(), 3);
  i.lo_strict = true;
  EXPECT_EQ(i.IntegralCount().value(), 2);
  i.hi_strict = true;
  EXPECT_EQ(i.IntegralCount().value(), 1);
  Interval inf;
  inf.integral = true;
  EXPECT_FALSE(inf.IntegralCount().has_value());
}

TEST(AnalyzeTest, ReportsDomains) {
  FakeEvaluator eval;
  Solver solver(&eval);
  Constraint c;
  c.Add(Primitive::In(V(0), DomainCall{"fake", "set123", {}}));
  c.Add(Primitive::Neq(V(0), C(2)));
  auto classes = solver.Analyze(c);
  ASSERT_TRUE(classes.ok());
  ASSERT_EQ(classes->size(), 1u);
  ASSERT_TRUE((*classes)[0].candidates.has_value());
  // The exclusion (X != 2) is already applied to the candidate set by
  // propagation, leaving {1, 3}.
  EXPECT_EQ((*classes)[0].candidates->size(), 2u);
}

}  // namespace
}  // namespace mmv
