// Failure-injection tests: every layer must surface evaluator failures as
// Status errors (never crash, never silently produce wrong views).

#include <gtest/gtest.h>

#include "maintenance/batch.h"
#include "maintenance/dred_constrained.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::MaterializeOrDie;
using testutil::ParseOrDie;
using testutil::ParseUpdate;
using testutil::TestWorld;
using testutil::Unwrap;

// Fails every evaluation after the first `budget` calls.
class FlakyEvaluator : public DcaEvaluator {
 public:
  FlakyEvaluator(DcaEvaluator* inner, int budget)
      : inner_(inner), budget_(budget) {}

  Result<DcaResult> Evaluate(const std::string& domain,
                             const std::string& function,
                             const std::vector<Value>& args) override {
    if (budget_-- <= 0) {
      return Status::Internal("injected failure");
    }
    return inner_->Evaluate(domain, function, args);
  }

 private:
  DcaEvaluator* inner_;
  int budget_;
};

class FailureInjectionTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { world_ = TestWorld::Make(); }
  TestWorld world_;
};

TEST_P(FailureInjectionTest, MaterializeSurfacesErrors) {
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 5)).
    b(X) <- a(X) & in(X, arith:between(0, 3)).
    c(X) <- b(X).
  )");
  FlakyEvaluator flaky(world_.domains.get(), GetParam());
  Result<View> v = Materialize(p, &flaky);
  if (!v.ok()) {
    EXPECT_EQ(v.status().code(), StatusCode::kInternal);
  }
  // With a generous budget it must succeed.
  FlakyEvaluator generous(world_.domains.get(), 1000000);
  EXPECT_TRUE(Materialize(p, &generous).ok());
}

TEST_P(FailureInjectionTest, StDelSurfacesErrors) {
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 5)).
    b(X) <- a(X).
  )");
  View view = MaterializeOrDie(p, world_.domains.get());
  maint::UpdateAtom req = ParseUpdate("a(X) <- X = 2.", &p);

  FlakyEvaluator flaky(world_.domains.get(), GetParam());
  View copy = view;
  Status s = maint::DeleteStDel(p, &copy, req, &flaky);
  if (!s.ok()) {
    EXPECT_EQ(s.code(), StatusCode::kInternal);
  }
}

TEST_P(FailureInjectionTest, DRedSurfacesErrors) {
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 5)).
    b(X) <- a(X).
  )");
  FixpointOptions opts;
  opts.semantics = DupSemantics::kSet;
  View view = Unwrap(Materialize(p, world_.domains.get(), opts));
  maint::UpdateAtom req = ParseUpdate("a(X) <- X = 2.", &p);

  FlakyEvaluator flaky(world_.domains.get(), GetParam());
  Result<View> out = maint::DeleteDRed(p, view, req, &flaky, opts);
  if (!out.ok()) {
    EXPECT_EQ(out.status().code(), StatusCode::kInternal);
  }
}

TEST_P(FailureInjectionTest, EnumerateSurfacesErrors) {
  Program p = ParseOrDie("a(X) <- in(X, arith:between(0, 5)).");
  View view = MaterializeOrDie(p, world_.domains.get());
  FlakyEvaluator flaky(world_.domains.get(), GetParam());
  Result<query::InstanceSet> set = query::EnumerateView(view, &flaky);
  if (!set.ok()) {
    EXPECT_EQ(set.status().code(), StatusCode::kInternal);
  }
}

// Budgets straddling every phase boundary of the small workloads above.
INSTANTIATE_TEST_SUITE_P(Budgets, FailureInjectionTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 21));

TEST(CallCacheTest, HistoricalCallsAreMemoized) {
  TestWorld w = TestWorld::Make();
  ASSERT_TRUE(w.catalog->CreateTable(rel::Schema{"t", {"k"}}).ok());
  ASSERT_TRUE(w.catalog->Insert("t", {Value("a")}).ok());
  w.catalog->clock().Advance();  // tick 0 is now historical

  w.domains->EnableCallCache(true);
  w.domains->ResetCallCount();
  for (int i = 0; i < 5; ++i) {
    auto r = w.domains->EvaluateAt("rel", "scan", {Value("t")}, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->values.size(), 1u);
  }
  EXPECT_EQ(w.domains->call_count(), 1);  // one live evaluation
  EXPECT_EQ(w.domains->cache_hits(), 4);
}

TEST(CallCacheTest, CurrentTickNeverCached) {
  TestWorld w = TestWorld::Make();
  ASSERT_TRUE(w.catalog->CreateTable(rel::Schema{"t", {"k"}}).ok());
  w.domains->EnableCallCache(true);

  ASSERT_TRUE(w.catalog->Insert("t", {Value("a")}).ok());
  auto r1 = w.domains->Evaluate("rel", "scan", {Value("t")});
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->values.size(), 1u);

  // Mutate within the same tick: the next evaluation must see it.
  ASSERT_TRUE(w.catalog->Insert("t", {Value("b")}).ok());
  auto r2 = w.domains->Evaluate("rel", "scan", {Value("t")});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->values.size(), 2u);
  EXPECT_EQ(w.domains->cache_hits(), 0);
}

TEST(CallCacheTest, DisableClearsCache) {
  TestWorld w = TestWorld::Make();
  ASSERT_TRUE(w.catalog->CreateTable(rel::Schema{"t", {"k"}}).ok());
  ASSERT_TRUE(w.catalog->Insert("t", {Value("a")}).ok());
  w.catalog->clock().Advance();
  w.domains->EnableCallCache(true);
  ASSERT_TRUE(w.domains->EvaluateAt("rel", "scan", {Value("t")}, 0).ok());
  w.domains->EnableCallCache(false);
  w.domains->ResetCallCount();
  ASSERT_TRUE(w.domains->EvaluateAt("rel", "scan", {Value("t")}, 0).ok());
  EXPECT_EQ(w.domains->call_count(), 1);  // evaluated live again
}

}  // namespace
}  // namespace mmv
