// Unit tests for batched updates and the duplicate-freeness check.

#include <gtest/gtest.h>

#include "maintenance/batch.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::Instances;
using testutil::MaterializeOrDie;
using testutil::ParseOrDie;
using testutil::ParseUpdate;
using testutil::TestWorld;
using testutil::Unwrap;

TEST(BatchTest, MixedBatchAppliesInOrder) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1. b(X) <- a(X).");
  View view = MaterializeOrDie(p, w.domains.get());

  std::vector<maint::Update> updates;
  updates.push_back(
      maint::Update::Insert(ParseUpdate("a(X) <- X = 2.", &p)));
  updates.push_back(
      maint::Update::Delete(ParseUpdate("a(X) <- X = 1.", &p)));
  updates.push_back(
      maint::Update::Insert(ParseUpdate("a(X) <- X = 3.", &p)));

  maint::BatchStats stats;
  ASSERT_TRUE(maint::ApplyUpdates(p, &view, updates, w.domains.get(), {},
                                  &stats)
                  .ok());
  EXPECT_EQ(Instances(view, w.domains.get()),
            (std::set<std::string>{"a(2)", "a(3)", "b(2)", "b(3)"}));
  EXPECT_EQ(stats.deletions_applied, 1u);
  EXPECT_EQ(stats.insertions_applied, 2u);
  EXPECT_GT(stats.atoms_added, 0u);
}

TEST(BatchTest, OrderMatters) {
  // delete x then insert x  !=  insert x then delete x.
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1.");

  View v1 = MaterializeOrDie(p, w.domains.get());
  ASSERT_TRUE(maint::ApplyUpdates(
                  p, &v1,
                  {maint::Update::Delete(ParseUpdate("a(X) <- X = 1.", &p)),
                   maint::Update::Insert(ParseUpdate("a(X) <- X = 1.", &p))},
                  w.domains.get())
                  .ok());
  EXPECT_EQ(Instances(v1, w.domains.get()),
            (std::set<std::string>{"a(1)"}));

  View v2 = MaterializeOrDie(p, w.domains.get());
  ASSERT_TRUE(maint::ApplyUpdates(
                  p, &v2,
                  {maint::Update::Insert(ParseUpdate("a(X) <- X = 1.", &p)),
                   maint::Update::Delete(ParseUpdate("a(X) <- X = 1.", &p))},
                  w.domains.get())
                  .ok());
  EXPECT_TRUE(Instances(v2, w.domains.get()).empty());
}

TEST(BatchTest, BatchMatchesSequentialSingles) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(4, 6);
  View batch_view = MaterializeOrDie(p, w.domains.get());
  View seq_view = batch_view;

  std::vector<maint::Update> updates;
  for (int k = 0; k < 3; ++k) {
    updates.push_back(maint::Update::Delete(
        ParseUpdate("p0(X) <- X = " + std::to_string(k) + ".", &p)));
  }
  ASSERT_TRUE(
      maint::ApplyUpdates(p, &batch_view, updates, w.domains.get()).ok());
  for (const maint::Update& u : updates) {
    ASSERT_TRUE(
        maint::DeleteStDel(p, &seq_view, u.atom, w.domains.get()).ok());
  }
  EXPECT_EQ(Instances(batch_view, w.domains.get()),
            Instances(seq_view, w.domains.get()));
}

TEST(BatchTest, ExternalSupportCounterPersists) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("b(X) <- a(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  int counter = 0;
  ASSERT_TRUE(maint::ApplyUpdates(
                  p, &view,
                  {maint::Update::Insert(ParseUpdate("a(X) <- X = 1.", &p))},
                  w.domains.get(), {}, nullptr, &counter)
                  .ok());
  ASSERT_TRUE(maint::ApplyUpdates(
                  p, &view,
                  {maint::Update::Insert(ParseUpdate("a(X) <- X = 2.", &p))},
                  w.domains.get(), {}, nullptr, &counter)
                  .ok());
  // All external supports distinct.
  std::set<std::string> supports;
  for (const ViewAtom& a : view.atoms()) {
    if (a.pred == "a") supports.insert(a.support.ToString());
  }
  EXPECT_EQ(supports.size(), 2u);
}

TEST(DuplicateFreeTest, ChainsAreDuplicateFree) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(3, 4);
  View view = MaterializeOrDie(p, w.domains.get());
  EXPECT_TRUE(Unwrap(maint::IsDuplicateFree(view, w.domains.get())));
}

TEST(DuplicateFreeTest, DiamondsAreNot) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeDiamond(1, 2);
  View view = MaterializeOrDie(p, w.domains.get());
  // Every m atom has two derivations denoting the same instance.
  EXPECT_FALSE(Unwrap(maint::IsDuplicateFree(view, w.domains.get())));
}

TEST(DuplicateFreeTest, OverlappingIntervalsAreNot) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 5)).
    a(X) <- in(X, arith:between(4, 9)).
  )");
  View view = MaterializeOrDie(p, w.domains.get());
  EXPECT_FALSE(Unwrap(maint::IsDuplicateFree(view, w.domains.get())));
}

TEST(DuplicateFreeTest, DisjointIntervalsAre) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 5)).
    a(X) <- in(X, arith:between(6, 9)).
  )");
  View view = MaterializeOrDie(p, w.domains.get());
  EXPECT_TRUE(Unwrap(maint::IsDuplicateFree(view, w.domains.get())));
}

TEST(DuplicateFreeTest, EmptyViewIsDuplicateFree) {
  TestWorld w = TestWorld::Make();
  View empty;
  EXPECT_TRUE(Unwrap(maint::IsDuplicateFree(empty, w.domains.get())));
}

}  // namespace
}  // namespace mmv
