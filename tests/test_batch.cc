// Unit tests for the batch-maintenance pipeline: the coalescing planner,
// the segmented multi-atom passes, per-phase counters, external-support
// numbering, and the duplicate-freeness check.

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>

#include "maintenance/batch.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::Instances;
using testutil::MaterializeOrDie;
using testutil::ParseOrDie;
using testutil::ParseUpdate;
using testutil::TestWorld;
using testutil::Unwrap;

// ---------------------------------------------------------------------------
// Coalescing planner.

maint::Update Ins(const std::string& text, Program* p) {
  return maint::Update::Insert(ParseUpdate(text, p));
}
maint::Update Del(const std::string& text, Program* p) {
  return maint::Update::Delete(ParseUpdate(text, p));
}

TEST(PlanBatchTest, MergesDuplicateInserts) {
  Program p = ParseOrDie("a(X) <- X = 0.");
  maint::BatchPlan plan = maint::PlanBatch(
      p, {Ins("a(X) <- X = 1.", &p), Ins("a(Y) <- Y = 1.", &p),
          Ins("a(X) <- X = 1.", &p)});
  ASSERT_EQ(plan.ops.size(), 1u);  // variable renaming folds into one key
  EXPECT_EQ(plan.coalesced_away, 2u);
  EXPECT_EQ(plan.ops[0].kind, maint::Update::Kind::kInsert);
}

TEST(PlanBatchTest, MergesDuplicateDeletes) {
  Program p = ParseOrDie("a(X) <- X = 0.");
  maint::BatchPlan plan = maint::PlanBatch(
      p, {Del("a(X) <- X = 1.", &p), Del("a(X) <- X = 1.", &p)});
  ASSERT_EQ(plan.ops.size(), 1u);
  EXPECT_EQ(plan.ops[0].kind, maint::Update::Kind::kDelete);
}

TEST(PlanBatchTest, DropsDeleteBeforeReinsert) {
  // delete k; insert k  ==  insert k (re-asserting wins).
  Program p = ParseOrDie("a(X) <- X = 0.");
  maint::BatchPlan plan = maint::PlanBatch(
      p, {Del("a(X) <- X = 1.", &p), Ins("a(X) <- X = 1.", &p)});
  ASSERT_EQ(plan.ops.size(), 1u);
  EXPECT_EQ(plan.ops[0].kind, maint::Update::Kind::kInsert);
}

TEST(PlanBatchTest, DropsInsertBeforeDelete) {
  // insert k; delete k  ==  delete k (the delete wipes the insert).
  Program p = ParseOrDie("a(X) <- X = 0.");
  maint::BatchPlan plan = maint::PlanBatch(
      p, {Ins("a(X) <- X = 1.", &p), Del("a(X) <- X = 1.", &p)});
  ASSERT_EQ(plan.ops.size(), 1u);
  EXPECT_EQ(plan.ops[0].kind, maint::Update::Kind::kDelete);
}

TEST(PlanBatchTest, CancellationChainKeepsLastAssertion) {
  Program p = ParseOrDie("a(X) <- X = 0.");
  maint::BatchPlan plan = maint::PlanBatch(p, {Ins("a(X) <- X = 1.", &p),
                                            Del("a(X) <- X = 1.", &p),
                                            Ins("a(X) <- X = 1.", &p)});
  ASSERT_EQ(plan.ops.size(), 1u);
  EXPECT_EQ(plan.ops[0].kind, maint::Update::Kind::kInsert);
  EXPECT_EQ(plan.coalesced_away, 2u);
}

TEST(PlanBatchTest, InterveningDeleteBlocksInsertRules) {
  // A delete of ANY predicate can strip derived coverage, so neither the
  // duplicate-insert merge nor the delete-reinsert drop may fire across it.
  Program p = ParseOrDie("a(X) <- X = 0.");
  maint::BatchPlan dup = maint::PlanBatch(p, {Ins("a(X) <- X = 1.", &p),
                                           Del("q(X) <- X = 7.", &p),
                                           Ins("a(X) <- X = 1.", &p)});
  EXPECT_EQ(dup.ops.size(), 3u);
  maint::BatchPlan pair = maint::PlanBatch(p, {Del("a(X) <- X = 1.", &p),
                                            Del("q(X) <- X = 7.", &p),
                                            Ins("a(X) <- X = 1.", &p)});
  EXPECT_EQ(pair.ops.size(), 3u);
}

TEST(PlanBatchTest, InterveningInsertBlocksDeleteRules) {
  // An insert of ANY predicate can re-derive deleted instances (and its Add
  // set can depend on the coverage an earlier insert provided).
  Program p = ParseOrDie("a(X) <- X = 0.");
  maint::BatchPlan dup = maint::PlanBatch(p, {Del("a(X) <- X = 1.", &p),
                                           Ins("q(X) <- X = 7.", &p),
                                           Del("a(X) <- X = 1.", &p)});
  EXPECT_EQ(dup.ops.size(), 3u);
  maint::BatchPlan pair = maint::PlanBatch(p, {Ins("a(X) <- X = 1.", &p),
                                            Ins("q(X) <- X = 7.", &p),
                                            Del("a(X) <- X = 1.", &p)});
  EXPECT_EQ(pair.ops.size(), 3u);
}

TEST(PlanBatchTest, DeleteReinsertAcrossOtherInsertsStillDrops) {
  Program p = ParseOrDie("a(X) <- X = 0.");
  maint::BatchPlan plan = maint::PlanBatch(p, {Del("a(X) <- X = 1.", &p),
                                            Ins("b(X) <- X = 2.", &p),
                                            Ins("a(X) <- X = 1.", &p)});
  ASSERT_EQ(plan.ops.size(), 2u);
  EXPECT_EQ(plan.ops[0].kind, maint::Update::Kind::kInsert);  // b
  EXPECT_EQ(plan.ops[1].kind, maint::Update::Kind::kInsert);  // a
}

TEST(PlanBatchTest, DerivedPredicateBlocksDeleteReinsertDrop) {
  // For a DERIVED k, delete-then-reinsert is NOT a plain re-assertion:
  // sequential execution swaps derived coverage for an independent external
  // support, which a later ancestor deletion can observe. The pair must
  // survive planning.
  Program p = ParseOrDie("r(X) <- X = 1. k(X) <- r(X).");
  maint::BatchPlan plan = maint::PlanBatch(
      p, {Del("k(X) <- X = 1.", &p), Ins("k(X) <- X = 1.", &p)});
  EXPECT_EQ(plan.ops.size(), 2u);
}

TEST(PlanBatchTest, BodyParticipantBlocksDeleteReinsertDrop) {
  // Re-inserting a rule BODY predicate re-derives its descendants, undoing
  // any earlier deletion of derived atoms above it — the pair must execute.
  Program p = ParseOrDie("b(X) <- X = 1. d(X) <- b(X).");
  maint::BatchPlan plan = maint::PlanBatch(
      p, {Del("b(X) <- X = 1.", &p), Ins("b(X) <- X = 1.", &p)});
  EXPECT_EQ(plan.ops.size(), 2u);
}

// ---------------------------------------------------------------------------
// Support-structure regressions: instance-equal intermediate states are NOT
// interchangeable, because later deletions propagate along supports. Both
// bursts end with a deletion that observes whether the re-asserted derived
// atom gained an independent external support.

TEST(BatchTest, ReinsertOfDerivedAtomSurvivesAncestorDeletion) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("r(X) <- X = 1. k(X) <- r(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  std::vector<maint::Update> burst = {Del("k(X) <- X = 1.", &p),
                                      Ins("k(X) <- X = 1.", &p),
                                      Del("r(X) <- X = 1.", &p)};
  View seq = view;
  ASSERT_TRUE(maint::ApplyBatch(p, &view, burst, w.domains.get()).ok());
  ASSERT_TRUE(
      maint::ApplyUpdatesSequential(p, &seq, burst, w.domains.get()).ok());
  // The re-asserted k(1) is external now; deleting r must not take it away.
  EXPECT_EQ(Instances(view, w.domains.get()),
            (std::set<std::string>{"k(1)"}));
  EXPECT_EQ(Instances(view, w.domains.get()),
            Instances(seq, w.domains.get()));
}

TEST(BatchTest, ReinsertOfBodyPredicateRederivesDeletedDescendants) {
  // Sequentially, re-inserting b(1) runs a continuation that re-derives
  // d(1) even though the burst deleted it first — so the planner must not
  // cancel the b pair, and ApplyBatch must match.
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("b(X) <- X = 1. d(X) <- b(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  std::vector<maint::Update> burst = {Del("d(X) <- X = 1.", &p),
                                      Del("b(X) <- X = 1.", &p),
                                      Ins("b(X) <- X = 1.", &p)};
  View seq = view;
  ASSERT_TRUE(maint::ApplyBatch(p, &view, burst, w.domains.get()).ok());
  ASSERT_TRUE(
      maint::ApplyUpdatesSequential(p, &seq, burst, w.domains.get()).ok());
  EXPECT_EQ(Instances(view, w.domains.get()),
            (std::set<std::string>{"b(1)", "d(1)"}));
  EXPECT_EQ(Instances(view, w.domains.get()),
            Instances(seq, w.domains.get()));
}

TEST(BatchTest, InsertCoveredByEarlierInsertsConsequencesAddsNoExternal) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("k(X) <- r(X).");
  View view = MaterializeOrDie(p, w.domains.get());  // empty
  std::vector<maint::Update> burst = {Ins("r(X) <- X = 1.", &p),
                                      Ins("k(X) <- X = 1.", &p),
                                      Del("r(X) <- X = 1.", &p)};
  View seq = view;
  ASSERT_TRUE(maint::ApplyBatch(p, &view, burst, w.domains.get()).ok());
  ASSERT_TRUE(
      maint::ApplyUpdatesSequential(p, &seq, burst, w.domains.get()).ok());
  // ins k(1) was already covered by the k(1) derived from the freshly
  // inserted r(1), so it adds no external and del r clears everything.
  EXPECT_TRUE(Instances(view, w.domains.get()).empty());
  EXPECT_TRUE(Instances(seq, w.domains.get()).empty());
}

// ---------------------------------------------------------------------------
// Pipeline execution.

TEST(BatchTest, MixedBatchAppliesInOrder) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1. b(X) <- a(X).");
  View view = MaterializeOrDie(p, w.domains.get());

  std::vector<maint::Update> updates;
  updates.push_back(Ins("a(X) <- X = 2.", &p));
  updates.push_back(Del("a(X) <- X = 1.", &p));
  updates.push_back(Ins("a(X) <- X = 3.", &p));

  maint::BatchStats stats;
  ASSERT_TRUE(maint::ApplyBatch(p, &view, updates, w.domains.get(), {},
                                &stats)
                  .ok());
  EXPECT_EQ(Instances(view, w.domains.get()),
            (std::set<std::string>{"a(2)", "a(3)", "b(2)", "b(3)"}));
  EXPECT_EQ(stats.input_updates, 3u);
  EXPECT_EQ(stats.coalesced_away, 0u);
  EXPECT_EQ(stats.deletions_applied, 1u);
  EXPECT_EQ(stats.insertions_applied, 2u);
  // Distinct-kind neighbours stay distinct runs: I | D | I.
  EXPECT_EQ(stats.delete_passes, 1u);
  EXPECT_EQ(stats.insert_passes, 2u);
  EXPECT_GT(stats.insertion_pass_atoms, 0u);
}

TEST(BatchTest, OrderMatters) {
  // delete x then insert x  !=  insert x then delete x.
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1.");

  View v1 = MaterializeOrDie(p, w.domains.get());
  ASSERT_TRUE(maint::ApplyBatch(p, &v1,
                                {Del("a(X) <- X = 1.", &p),
                                 Ins("a(X) <- X = 1.", &p)},
                                w.domains.get())
                  .ok());
  EXPECT_EQ(Instances(v1, w.domains.get()),
            (std::set<std::string>{"a(1)"}));

  View v2 = MaterializeOrDie(p, w.domains.get());
  ASSERT_TRUE(maint::ApplyBatch(p, &v2,
                                {Ins("a(X) <- X = 1.", &p),
                                 Del("a(X) <- X = 1.", &p)},
                                w.domains.get())
                  .ok());
  EXPECT_TRUE(Instances(v2, w.domains.get()).empty());
}

TEST(BatchTest, BatchMatchesSequentialSingles) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(4, 6);
  View batch_view = MaterializeOrDie(p, w.domains.get());
  View seq_view = batch_view;

  std::vector<maint::Update> updates;
  for (int k = 0; k < 3; ++k) {
    updates.push_back(Del("p0(X) <- X = " + std::to_string(k) + ".", &p));
  }
  maint::BatchStats batch_stats;
  ASSERT_TRUE(maint::ApplyBatch(p, &batch_view, updates, w.domains.get(), {},
                                &batch_stats)
                  .ok());
  ASSERT_TRUE(maint::ApplyUpdatesSequential(p, &seq_view, updates,
                                            w.domains.get())
                  .ok());
  EXPECT_EQ(Instances(batch_view, w.domains.get()),
            Instances(seq_view, w.domains.get()));
  // The three deletions collapsed into ONE propagation pass.
  EXPECT_EQ(batch_stats.delete_passes, 1u);
  EXPECT_EQ(batch_stats.deletions_applied, 3u);
}

TEST(BatchTest, PerPhaseCountersOnChain) {
  // MakeChain(depth, width): deleting one fact replaces one atom per level
  // — one step-2 subtraction plus `depth` step-3 propagations — and the
  // re-insert of a fresh fact adds depth+1 atoms in one continuation.
  const int depth = 5;
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(depth, 4);
  View view = MaterializeOrDie(p, w.domains.get());

  std::vector<maint::Update> updates = {
      Del("p0(X) <- X = 0.", &p),
      Del("p0(X) <- X = 0.", &p),  // duplicate: coalesced away
      Ins("p0(X) <- X = 99.", &p),
      Ins("p0(X) <- X = 99.", &p),  // duplicate: coalesced away
  };
  maint::BatchStats stats;
  ASSERT_TRUE(maint::ApplyBatch(p, &view, updates, w.domains.get(), {},
                                &stats)
                  .ok());

  EXPECT_EQ(stats.input_updates, 4u);
  EXPECT_EQ(stats.coalesced_away, 2u);
  EXPECT_EQ(stats.delete_passes, 1u);
  EXPECT_EQ(stats.insert_passes, 1u);
  EXPECT_EQ(stats.deletions_applied, 1u);
  EXPECT_EQ(stats.insertions_applied, 1u);
  EXPECT_EQ(stats.del_elements, 1u);
  EXPECT_EQ(stats.replacements, static_cast<size_t>(depth + 1));
  EXPECT_EQ(stats.step3_replacements, static_cast<size_t>(depth));
  EXPECT_EQ(stats.removed_unsolvable, static_cast<size_t>(depth + 1));
  EXPECT_EQ(stats.add_atoms, 1u);
  EXPECT_EQ(stats.insertion_pass_atoms, static_cast<size_t>(depth + 1));

  // The sequential baseline reports the same phase totals for this burst
  // (the coalesced-away updates are no-ops there, not errors).
  View seq = MaterializeOrDie(p, w.domains.get());
  maint::BatchStats seq_stats;
  ASSERT_TRUE(maint::ApplyUpdatesSequential(p, &seq, updates, w.domains.get(),
                                            {}, &seq_stats)
                  .ok());
  EXPECT_EQ(Instances(view, w.domains.get()),
            Instances(seq, w.domains.get()));
  EXPECT_EQ(seq_stats.replacements, stats.replacements);
  EXPECT_EQ(seq_stats.insertion_pass_atoms, stats.insertion_pass_atoms);
}

// ---------------------------------------------------------------------------
// External-support numbering.

// Collects every negative clause number found anywhere in the view's
// support trees (external-fact leaves, nested or not).
std::multiset<int> ExternalSupportNumbers(const View& view) {
  std::multiset<int> out;
  std::function<void(const Support&)> walk = [&](const Support& s) {
    if (s.IsExternal()) out.insert(s.clause());
    for (const Support& c : s.children()) walk(c);
  };
  for (const ViewAtom& a : view.atoms()) walk(a.support);
  return out;
}

TEST(BatchTest, ExternalSupportCounterPersists) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("b(X) <- a(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  int counter = 0;
  ASSERT_TRUE(maint::ApplyBatch(p, &view, {Ins("a(X) <- X = 1.", &p)},
                                w.domains.get(), {}, nullptr, &counter)
                  .ok());
  ASSERT_TRUE(maint::ApplyBatch(p, &view, {Ins("a(X) <- X = 2.", &p)},
                                w.domains.get(), {}, nullptr, &counter)
                  .ok());
  // All external supports distinct.
  std::set<std::string> supports;
  for (const ViewAtom& a : view.atoms()) {
    if (a.pred == "a") supports.insert(a.support.ToString());
  }
  EXPECT_EQ(supports.size(), 2u);
}

TEST(BatchTest, ExtCounterMonotoneAndCollisionFreeAcrossBatches) {
  // Regression: consecutive batches on the same duplicate-semantics view
  // must keep handing out strictly decreasing external numbers, and no two
  // external leaves anywhere in the support forest may collide.
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("b(X) <- a(X). c(X) <- b(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  int counter = 0;
  int previous = 0;
  for (int batch = 0; batch < 4; ++batch) {
    std::vector<maint::Update> burst = {
        Ins("a(X) <- X = " + std::to_string(10 * batch) + ".", &p),
        Ins("a(X) <- X = " + std::to_string(10 * batch + 1) + ".", &p),
    };
    ASSERT_TRUE(maint::ApplyBatch(p, &view, burst, w.domains.get(), {},
                                  nullptr, &counter)
                    .ok());
    EXPECT_LT(counter, previous) << "counter must strictly decrease";
    previous = counter;
  }
  // Each insert produced one external leaf, copied into the supports of
  // its b/c consequences; the distinct external NUMBERS must be exactly 8.
  std::multiset<int> numbers = ExternalSupportNumbers(view);
  std::set<int> distinct(numbers.begin(), numbers.end());
  EXPECT_EQ(distinct.size(), 8u);
  // And the a-atoms themselves never share a number.
  std::multiset<int> roots;
  for (const ViewAtom& a : view.atoms()) {
    if (a.pred == "a") roots.insert(a.support.clause());
  }
  EXPECT_EQ(roots.size(), std::set<int>(roots.begin(), roots.end()).size());
}

TEST(BatchTest, FreshCounterSeedsBelowNestedExternals) {
  // Regression for the counter-seeding scan: an external leaf may survive
  // only NESTED inside a derived support (its own atom re-keyed or gone).
  // Seeding from root clause numbers alone would re-issue -5 here.
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("b(X) <- a(X).");
  View view;
  {
    ViewAtom derived;
    derived.pred = "b";
    VarId x = p.factory()->Fresh();
    derived.args = {Term::Var(x)};
    derived.constraint.Add(
        Primitive::Eq(Term::Var(x), Term::Const(Value(int64_t{7}))));
    derived.support = Support(1, {Support(-5)});
    view.Add(std::move(derived));
  }
  ASSERT_TRUE(maint::ApplyBatch(p, &view, {Ins("a(X) <- X = 1.", &p)},
                                w.domains.get())
                  .ok());
  for (const ViewAtom& a : view.atoms()) {
    if (a.pred == "a") {
      EXPECT_LT(a.support.clause(), -5);
    }
  }
}

// ---------------------------------------------------------------------------
// Duplicate-freeness (Algorithm 1 applicability).

TEST(DuplicateFreeTest, ChainsAreDuplicateFree) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(3, 4);
  View view = MaterializeOrDie(p, w.domains.get());
  EXPECT_TRUE(Unwrap(maint::IsDuplicateFree(view, w.domains.get())));
}

TEST(DuplicateFreeTest, DiamondsAreNot) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeDiamond(1, 2);
  View view = MaterializeOrDie(p, w.domains.get());
  // Every m atom has two derivations denoting the same instance.
  EXPECT_FALSE(Unwrap(maint::IsDuplicateFree(view, w.domains.get())));
}

TEST(DuplicateFreeTest, OverlappingIntervalsAreNot) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 5)).
    a(X) <- in(X, arith:between(4, 9)).
  )");
  View view = MaterializeOrDie(p, w.domains.get());
  EXPECT_FALSE(Unwrap(maint::IsDuplicateFree(view, w.domains.get())));
}

TEST(DuplicateFreeTest, DisjointIntervalsAre) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 5)).
    a(X) <- in(X, arith:between(6, 9)).
  )");
  View view = MaterializeOrDie(p, w.domains.get());
  EXPECT_TRUE(Unwrap(maint::IsDuplicateFree(view, w.domains.get())));
}

TEST(DuplicateFreeTest, EmptyViewIsDuplicateFree) {
  TestWorld w = TestWorld::Make();
  View empty;
  EXPECT_TRUE(Unwrap(maint::IsDuplicateFree(empty, w.domains.get())));
}

}  // namespace
}  // namespace mmv
