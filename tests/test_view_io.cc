// Unit tests for view serialization (parser/view_io).

#include <gtest/gtest.h>

#include "constraint/canonical.h"
#include "maintenance/stdel.h"
#include "parser/view_io.h"
#include "test_util.h"

namespace mmv {
namespace {

using testutil::Instances;
using testutil::MaterializeOrDie;
using testutil::ParseOrDie;
using testutil::ParseUpdate;
using testutil::TestWorld;
using testutil::Unwrap;

TEST(SupportParseTest, RoundTrip) {
  for (const char* text :
       {"<1>", "<4, <2, <3>>>", "<5, <1>, <2>, <3>>", "<-3>",
        "<7, <-1>, <4, <2>>>"}) {
    Support s = Unwrap(parser::ParseSupport(text));
    EXPECT_EQ(s.ToString(), text);
  }
}

TEST(SupportParseTest, Errors) {
  EXPECT_FALSE(parser::ParseSupport("").ok());
  EXPECT_FALSE(parser::ParseSupport("<").ok());
  EXPECT_FALSE(parser::ParseSupport("<a>").ok());
  EXPECT_FALSE(parser::ParseSupport("<1> junk").ok());
  EXPECT_FALSE(parser::ParseSupport("<1, <2>").ok());
}

TEST(ViewIoTest, EmptyView) {
  Program p;
  View empty = Unwrap(parser::DeserializeView("", &p));
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(parser::SerializeView(empty), "");
}

TEST(ViewIoTest, RoundTripPreservesInstancesAndSupports) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 3)).
    a(X) <- b(X).
    b(X) <- in(X, arith:between(0, 5)).
    c(X) <- a(X).
  )");
  View view = MaterializeOrDie(p, w.domains.get());

  std::string text = parser::SerializeView(view);
  View loaded = Unwrap(parser::DeserializeView(text, &p));

  ASSERT_EQ(loaded.size(), view.size());
  for (size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(loaded.atoms()[i].pred, view.atoms()[i].pred);
    EXPECT_EQ(loaded.atoms()[i].support, view.atoms()[i].support);
    EXPECT_EQ(loaded.atoms()[i].depth, view.atoms()[i].depth);
  }
  EXPECT_EQ(Instances(loaded, w.domains.get()),
            Instances(view, w.domains.get()));
}

TEST(ViewIoTest, RoundTripAfterDeletionWithNotBlocks) {
  // Post-StDel views carry (possibly grounded) not-blocks; they must
  // serialize and load back losslessly at the instance level.
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- in(X, arith:between(0, 9)).
    b(X) <- a(X).
  )");
  View view = MaterializeOrDie(p, w.domains.get());
  maint::UpdateAtom req =
      ParseUpdate("a(X) <- in(X, arith:between(3, 5)).", &p);
  ASSERT_TRUE(maint::DeleteStDel(p, &view, req, w.domains.get()).ok());

  std::string text = parser::SerializeView(view);
  View loaded = Unwrap(parser::DeserializeView(text, &p));
  EXPECT_EQ(Instances(loaded, w.domains.get()),
            Instances(view, w.domains.get()));
}

TEST(ViewIoTest, LoadedViewIsMaintainable) {
  // A deserialized view must keep working: supports must line up with the
  // program's clause numbering so StDel can propagate.
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1. a(X) <- X = 2. b(X) <- a(X).");
  View view = MaterializeOrDie(p, w.domains.get());
  View loaded =
      Unwrap(parser::DeserializeView(parser::SerializeView(view), &p));

  maint::UpdateAtom req = ParseUpdate("a(X) <- X = 1.", &p);
  ASSERT_TRUE(maint::DeleteStDel(p, &loaded, req, w.domains.get()).ok());
  EXPECT_EQ(Instances(loaded, w.domains.get()),
            (std::set<std::string>{"a(2)", "b(2)"}));
}

TEST(ViewIoTest, TupleValuesRoundTrip) {
  // Constraints mentioning tuple constants (relational rows) survive.
  TestWorld w = TestWorld::Make();
  Program p;
  ViewAtom atom;
  atom.pred = "row";
  VarId x = p.factory()->Fresh();
  atom.args = {Term::Var(x)};
  atom.constraint.Add(Primitive::Eq(
      Term::Var(x),
      Term::Const(Value(ValueList{Value("ann"), Value(30), Value(true)}))));
  atom.support = Support(-1);
  View view;
  view.Add(atom);

  View loaded =
      Unwrap(parser::DeserializeView(parser::SerializeView(view), &p));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(Instances(loaded, w.domains.get()),
            Instances(view, w.domains.get()));
}

TEST(ViewIoTest, CommentsAndBlanksIgnored) {
  Program p;
  View loaded = Unwrap(parser::DeserializeView(
      "% a comment line\n\n  \n"
      "a(X0) <- X0 = 1 @ <1> # 0\n",
      &p));
  EXPECT_EQ(loaded.size(), 1u);
}

TEST(ViewIoTest, MissingSupportIsError) {
  Program p;
  EXPECT_FALSE(parser::DeserializeView("a(X0) <- X0 = 1\n", &p).ok());
}

TEST(ParserListTest, TupleLiterals) {
  Program p = ParseOrDie(R"(f(X) <- X = [1, "a", true, [2, 3]].)");
  const Term& rhs = p.clauses()[0].constraint.prims()[0].rhs;
  ASSERT_TRUE(rhs.is_const());
  ASSERT_TRUE(rhs.constant().is_list());
  EXPECT_EQ(rhs.constant().as_list().size(), 4u);
  EXPECT_EQ(rhs.constant().as_list()[3].as_list()[1], Value(3));

  EXPECT_FALSE(parser::ParseProgram("f(X) <- X = [Y].").ok());  // no vars
  Program empty_list = ParseOrDie("f(X) <- X = [].");
  EXPECT_TRUE(
      empty_list.clauses()[0].constraint.prims()[0].rhs.constant().is_list());
}

TEST(ParserNestedNotTest, ParsesNestedBlocks) {
  Program p = ParseOrDie("f(X) <- not(X = 1 & not(X = 2 & not(X = 3))).");
  const Constraint& c = p.clauses()[0].constraint;
  ASSERT_EQ(c.nots().size(), 1u);
  ASSERT_EQ(c.nots()[0].inner.size(), 1u);
  ASSERT_EQ(c.nots()[0].inner[0].inner.size(), 1u);
}

TEST(BurstIoTest, ParsesKindsCommentsAndBlanks) {
  Program p;
  auto burst = Unwrap(parser::ParseBurst(R"(
    % recorded burst
    del a(X) <- X = 1.

    ins a(X) <- X = 2.
    ins b(X, Y) <- X = 1 & Y != 2.
  )",
                                         &p));
  ASSERT_EQ(burst.size(), 3u);
  EXPECT_TRUE(burst[0].is_delete);
  EXPECT_FALSE(burst[1].is_delete);
  EXPECT_EQ(burst[0].atom.pred, "a");
  EXPECT_EQ(burst[2].atom.pred, "b");
  EXPECT_EQ(burst[2].atom.args.size(), 2u);
}

TEST(BurstIoTest, RejectsUnknownDirective) {
  Program p;
  EXPECT_FALSE(parser::ParseBurst("upsert a(X) <- X = 1.\n", &p).ok());
}

TEST(BurstIoTest, SerializeParseRoundTrip) {
  Program p;
  auto original = Unwrap(parser::ParseBurst(
      "del a(X) <- X = 1.\nins a(X) <- in(X, arith:between(0, 4)).\n"
      "ins c(X) <- true.\n",
      &p));
  std::string text = parser::SerializeBurst(original, p.names());
  auto reparsed = Unwrap(parser::ParseBurst(text, &p));
  ASSERT_EQ(reparsed.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed[i].is_delete, original[i].is_delete);
    EXPECT_EQ(reparsed[i].atom.pred, original[i].atom.pred);
    EXPECT_EQ(CanonicalAtomString(original[i].atom.pred, original[i].atom.args,
                                  original[i].atom.constraint),
              CanonicalAtomString(reparsed[i].atom.pred,
                                  reparsed[i].atom.args,
                                  reparsed[i].atom.constraint));
  }
}

}  // namespace
}  // namespace mmv
