// Property-based tests: on randomly generated acyclic constrained programs,
// every incremental maintenance algorithm must agree (at the instance
// level) with the declarative from-scratch semantics (Theorems 1-3), and
// W_P must agree with T_P at every time point (Corollary 1).

#include <gtest/gtest.h>

#include "maintenance/dred_constrained.h"
#include "maintenance/insert.h"
#include "maintenance/stdel.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::Instances;
using testutil::TestWorld;
using testutil::Unwrap;

class RandomProgramProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramProperty, StDelMatchesDeclarativeDeletion) {
  TestWorld w = TestWorld::Make();
  Rng rng(GetParam());
  workload::RandomProgramOptions opts;
  Program p = workload::MakeRandomProgram(&rng, opts);

  View view = testutil::MaterializeOrDie(p, w.domains.get());
  size_t fact_count = 0;
  for (const Clause& c : p.clauses()) fact_count += c.IsFact() ? 1 : 0;
  maint::UpdateAtom req = workload::DeleteFactRequest(
      p, static_cast<size_t>(rng.Int(0, static_cast<int64_t>(fact_count))));

  Status s = maint::DeleteStDel(p, &view, req, w.domains.get());
  ASSERT_TRUE(s.ok()) << s.ToString();
  View oracle =
      Unwrap(maint::RecomputeAfterDeletion(p, req, w.domains.get()));
  EXPECT_EQ(Instances(view, w.domains.get()),
            Instances(oracle, w.domains.get()))
      << "seed " << GetParam() << "\nprogram:\n"
      << p.ToString() << "request: " << req.ToString(p.names());
}

TEST_P(RandomProgramProperty, DRedMatchesDeclarativeDeletion) {
  TestWorld w = TestWorld::Make();
  Rng rng(GetParam() * 31 + 7);
  workload::RandomProgramOptions opts;
  Program p = workload::MakeRandomProgram(&rng, opts);

  FixpointOptions fp;
  fp.semantics = DupSemantics::kSet;
  View view = Unwrap(Materialize(p, w.domains.get(), fp));
  size_t fact_count = 0;
  for (const Clause& c : p.clauses()) fact_count += c.IsFact() ? 1 : 0;
  maint::UpdateAtom req = workload::DeleteFactRequest(
      p, static_cast<size_t>(rng.Int(0, static_cast<int64_t>(fact_count))));

  View result =
      Unwrap(maint::DeleteDRed(p, view, req, w.domains.get(), fp));
  View oracle =
      Unwrap(maint::RecomputeAfterDeletion(p, req, w.domains.get(), fp));
  EXPECT_EQ(Instances(result, w.domains.get()),
            Instances(oracle, w.domains.get()))
      << "seed " << GetParam() << "\nprogram:\n"
      << p.ToString() << "request: " << req.ToString(p.names());
}

TEST_P(RandomProgramProperty, InsertMatchesDeclarativeInsertion) {
  TestWorld w = TestWorld::Make();
  Rng rng(GetParam() * 131 + 3);
  workload::RandomProgramOptions opts;
  Program p = workload::MakeRandomProgram(&rng, opts);

  View view = testutil::MaterializeOrDie(p, w.domains.get());
  // Insert a random base atom (possibly overlapping existing instances).
  maint::UpdateAtom req;
  req.pred = "base" + std::to_string(rng.Int(0, opts.base_preds - 1));
  VarId x = p.factory()->Fresh();
  req.args = {Term::Var(x)};
  int64_t lo = rng.Int(0, opts.const_pool);
  req.constraint.Add(Primitive::In(
      Term::Var(x),
      DomainCall{"arith",
                 "between",
                 {Term::Const(Value(lo)), Term::Const(Value(lo + 2))}}));

  int ext = 0;
  Status s =
      maint::InsertAtom(p, &view, req, w.domains.get(), {}, nullptr, &ext);
  ASSERT_TRUE(s.ok()) << s.ToString();
  View oracle =
      Unwrap(maint::RecomputeAfterInsertion(p, req, w.domains.get()));
  EXPECT_EQ(Instances(view, w.domains.get()),
            Instances(oracle, w.domains.get()))
      << "seed " << GetParam() << "\nprogram:\n"
      << p.ToString() << "request: " << req.ToString(p.names());
}

TEST_P(RandomProgramProperty, SetAndDuplicateSemanticsAgreeOnInstances) {
  TestWorld w = TestWorld::Make();
  Rng rng(GetParam() * 977 + 11);
  workload::RandomProgramOptions opts;
  Program p = workload::MakeRandomProgram(&rng, opts);

  View dup = testutil::MaterializeOrDie(p, w.domains.get());
  FixpointOptions fp;
  fp.semantics = DupSemantics::kSet;
  View set = Unwrap(Materialize(p, w.domains.get(), fp));
  EXPECT_EQ(Instances(dup, w.domains.get()), Instances(set, w.domains.get()))
      << "seed " << GetParam();
  EXPECT_LE(set.size(), dup.size());
}

TEST_P(RandomProgramProperty, WpAgreesWithTpOnInstances) {
  TestWorld w = TestWorld::Make();
  Rng rng(GetParam() * 733 + 5);
  workload::RandomProgramOptions opts;
  Program p = workload::MakeRandomProgram(&rng, opts);

  View tp = testutil::MaterializeOrDie(p, w.domains.get());
  FixpointOptions wp_opts;
  wp_opts.op = OperatorKind::kWp;
  View wp = Unwrap(Materialize(p, w.domains.get(), wp_opts));
  // Corollary 1: [W_P view] == [T_P view] (evaluated at the same time).
  EXPECT_EQ(Instances(wp, w.domains.get()), Instances(tp, w.domains.get()))
      << "seed " << GetParam();
  // The W_P view can only be (syntactically) larger.
  EXPECT_GE(wp.size(), tp.size());
}

TEST_P(RandomProgramProperty, DeleteInsertRoundTrip) {
  TestWorld w = TestWorld::Make();
  Rng rng(GetParam() * 389 + 17);
  workload::RandomProgramOptions opts;
  opts.interval_fact_prob = 0;  // ground facts only for exact round trips
  Program p = workload::MakeRandomProgram(&rng, opts);

  View view = testutil::MaterializeOrDie(p, w.domains.get());
  auto before = Instances(view, w.domains.get());
  maint::UpdateAtom req = workload::DeleteFactRequest(p, 1);

  ASSERT_TRUE(maint::DeleteStDel(p, &view, req, w.domains.get()).ok());
  int ext = 0;
  ASSERT_TRUE(
      maint::InsertAtom(p, &view, req, w.domains.get(), {}, nullptr, &ext)
          .ok());
  EXPECT_EQ(Instances(view, w.domains.get()), before)
      << "seed " << GetParam() << "\nprogram:\n"
      << p.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace mmv
