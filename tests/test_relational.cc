// Unit tests for the versioned relational engine.

#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/index.h"

namespace mmv {
namespace rel {
namespace {

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(
        Schema{"people", {"name", "age", "city"}});
  }
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, InsertSelectScan) {
  ASSERT_TRUE(table_->Insert({Value("ann"), Value(30), Value("dc")}, 1).ok());
  ASSERT_TRUE(table_->Insert({Value("bob"), Value(40), Value("ny")}, 1).ok());
  EXPECT_EQ(table_->size(), 2u);

  auto rows = table_->SelectEq("name", Value("ann"));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1], Value(30));

  EXPECT_EQ(table_->Scan().size(), 2u);
}

TEST_F(TableTest, IndexStaysCorrectAcrossMutations) {
  // Force index materialization first, then mutate: the incremental index
  // maintenance (no wholesale invalidation) must keep SelectEq exact.
  ASSERT_TRUE(table_->Insert({Value("ann"), Value(30), Value("dc")}, 1).ok());
  ASSERT_TRUE(table_->SelectEq("name", Value("ann")).ok());

  ASSERT_TRUE(table_->Insert({Value("bob"), Value(40), Value("ny")}, 2).ok());
  ASSERT_TRUE(table_->Insert({Value("ann"), Value(51), Value("la")}, 3).ok());
  auto rows = table_->SelectEq("name", Value("ann"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);

  ASSERT_TRUE(table_->Delete({Value("ann"), Value(30), Value("dc")}, 4).ok());
  rows = table_->SelectEq("name", Value("ann"));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1], Value(51));

  // A second index materialized after the deletes sees the same state.
  auto cities = table_->SelectEq("city", Value("dc"));
  ASSERT_TRUE(cities.ok());
  EXPECT_TRUE(cities->empty());

  auto removed = table_->DeleteWhere("name", Value("ann"), 5);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1);
  rows = table_->SelectEq("name", Value("ann"));
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  EXPECT_EQ(table_->SelectEq("name", Value("bob"))->size(), 1u);
}

TEST_F(TableTest, ArityMismatchRejected) {
  EXPECT_EQ(table_->Insert({Value("ann")}, 1).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TableTest, UnknownColumnRejected) {
  EXPECT_EQ(table_->SelectEq("nope", Value(1)).status().code(),
            StatusCode::kNotFound);
}

TEST_F(TableTest, DeleteOneOccurrence) {
  Row r = {Value("ann"), Value(30), Value("dc")};
  ASSERT_TRUE(table_->Insert(r, 1).ok());
  ASSERT_TRUE(table_->Insert(r, 1).ok());  // duplicate allowed
  EXPECT_EQ(table_->size(), 2u);
  ASSERT_TRUE(table_->Delete(r, 2).ok());
  EXPECT_EQ(table_->size(), 1u);
  ASSERT_TRUE(table_->Delete(r, 2).ok());
  EXPECT_EQ(table_->Delete(r, 2).code(), StatusCode::kNotFound);
}

TEST_F(TableTest, DeleteWhere) {
  ASSERT_TRUE(table_->Insert({Value("ann"), Value(30), Value("dc")}, 1).ok());
  ASSERT_TRUE(table_->Insert({Value("bob"), Value(30), Value("ny")}, 1).ok());
  ASSERT_TRUE(table_->Insert({Value("cat"), Value(40), Value("dc")}, 1).ok());
  auto n = table_->DeleteWhere("age", Value(30), 2);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2);
  EXPECT_EQ(table_->size(), 1u);
}

TEST_F(TableTest, SelectRange) {
  ASSERT_TRUE(table_->Insert({Value("a"), Value(10), Value("x")}, 1).ok());
  ASSERT_TRUE(table_->Insert({Value("b"), Value(20), Value("x")}, 1).ok());
  ASSERT_TRUE(table_->Insert({Value("c"), Value(30), Value("x")}, 1).ok());
  auto rows = table_->SelectRange("age", 15, 30);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(TableTest, TimeTravelRowsAt) {
  ASSERT_TRUE(table_->Insert({Value("a"), Value(1), Value("x")}, 1).ok());
  ASSERT_TRUE(table_->Insert({Value("b"), Value(2), Value("x")}, 2).ok());
  ASSERT_TRUE(table_->Delete({Value("a"), Value(1), Value("x")}, 3).ok());

  EXPECT_EQ(table_->RowsAt(0).size(), 0u);
  EXPECT_EQ(table_->RowsAt(1).size(), 1u);
  EXPECT_EQ(table_->RowsAt(2).size(), 2u);
  EXPECT_EQ(table_->RowsAt(3).size(), 1u);
  EXPECT_EQ(table_->RowsAt(3)[0][0], Value("b"));
  // Current state agrees with the latest tick.
  EXPECT_EQ(table_->Scan().size(), 1u);
}

TEST_F(TableTest, DiffBetweenIsFPlusFMinus) {
  ASSERT_TRUE(table_->Insert({Value("a"), Value(1), Value("x")}, 1).ok());
  ASSERT_TRUE(table_->Insert({Value("b"), Value(2), Value("x")}, 2).ok());
  ASSERT_TRUE(table_->Delete({Value("a"), Value(1), Value("x")}, 2).ok());

  TableDiff diff = table_->DiffBetween(1, 2);
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0][0], Value("b"));
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0][0], Value("a"));

  TableDiff none = table_->DiffBetween(2, 2);
  EXPECT_TRUE(none.added.empty());
  EXPECT_TRUE(none.removed.empty());
}

TEST(CatalogTest, CreateGetInsert) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable(Schema{"t", {"a"}}).ok());
  EXPECT_EQ(cat.CreateTable(Schema{"t", {"a"}}).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(cat.GetTable("missing").status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(cat.Insert("t", {Value(1)}).ok());
  auto t = cat.GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->size(), 1u);
  EXPECT_EQ(cat.table_count(), 1u);
}

TEST(CatalogTest, ClockStampsMutations) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable(Schema{"t", {"a"}}).ok());
  ASSERT_TRUE(cat.Insert("t", {Value(1)}).ok());  // tick 0
  cat.clock().Advance();                          // tick 1
  ASSERT_TRUE(cat.Insert("t", {Value(2)}).ok());

  const Table* t = *static_cast<const Catalog&>(cat).GetTable("t");
  EXPECT_EQ(t->RowsAt(0).size(), 1u);
  EXPECT_EQ(t->RowsAt(1).size(), 2u);
}

TEST(SchemaTest, ColumnIndex) {
  Schema s{"t", {"a", "b", "c"}};
  EXPECT_EQ(s.ColumnIndex("a"), 0);
  EXPECT_EQ(s.ColumnIndex("c"), 2);
  EXPECT_EQ(s.ColumnIndex("zzz"), -1);
  EXPECT_EQ(s.arity(), 3u);
}

TEST(RowTest, RoundTripThroughValue) {
  Row r = {Value("x"), Value(1)};
  Value v = RowToValue(r);
  ASSERT_TRUE(v.is_list());
  auto back = ValueToRow(v);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, r);
  EXPECT_EQ(ValueToRow(Value(3)).status().code(), StatusCode::kTypeError);
}

TEST(HashIndexTest, LookupFindsAllMatches) {
  std::vector<Row> rows = {{Value(1), Value("a")},
                           {Value(2), Value("b")},
                           {Value(1), Value("c")}};
  HashIndex idx(rows, 0);
  auto hits = idx.Lookup(rows, Value(1));
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(idx.Lookup(rows, Value(9)).empty());
}

}  // namespace
}  // namespace rel
}  // namespace mmv
