// Unit tests for common/value.

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/value.h"

namespace mmv {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(42).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value(ValueList{Value(1)}).is_list());

  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(3.5).as_double(), 3.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_TRUE(Value(true).as_bool());
}

TEST(ValueTest, NumericCrossKindEquality) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_EQ(Value(2.0), Value(2));
  EXPECT_NE(Value(2), Value(2.5));
  EXPECT_TRUE(Value(2).is_numeric());
  EXPECT_DOUBLE_EQ(Value(2).numeric(), 2.0);
}

TEST(ValueTest, CrossKindInequality) {
  EXPECT_NE(Value(1), Value("1"));
  EXPECT_NE(Value(true), Value(1));
  EXPECT_NE(Value(), Value(0));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value(2));
  EXPECT_TRUE(set.count(Value(2.0)) > 0);
}

TEST(ValueTest, TotalOrder) {
  // kind classes: null < bool < numeric < string < list
  EXPECT_LT(Value(), Value(false));
  EXPECT_LT(Value(true), Value(0));
  EXPECT_LT(Value(7), Value("a"));
  EXPECT_LT(Value("z"), Value(ValueList{}));
  // within numerics
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.5), Value(2));
  EXPECT_FALSE(Value(2) < Value(2.0));
  EXPECT_FALSE(Value(2.0) < Value(2));
}

TEST(ValueTest, ListOrderingIsLexicographic) {
  Value a(ValueList{Value(1), Value(2)});
  Value b(ValueList{Value(1), Value(3)});
  Value c(ValueList{Value(1)});
  EXPECT_LT(a, b);
  EXPECT_LT(c, a);
  EXPECT_EQ(a, Value(ValueList{Value(1), Value(2)}));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "\"x\"");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(ValueList{Value(1), Value("a")}).ToString(),
            "[1, \"a\"]");
  EXPECT_EQ(Value(2.0).ToString(), "2.0");  // doubles keep a decimal marker
}

TEST(ValueTest, NestedLists) {
  Value nested(ValueList{Value(ValueList{Value(1)}), Value(2)});
  EXPECT_EQ(nested.as_list()[0].as_list()[0], Value(1));
  EXPECT_EQ(nested.ToString(), "[[1], 2]");
  EXPECT_EQ(nested, Value(ValueList{Value(ValueList{Value(1)}), Value(2)}));
}

}  // namespace
}  // namespace mmv
