// Differential oracle for the join pipeline: the constraint-aware indexed
// join (arg-value probes, incremental unification with ground rejection,
// rename-free fully-ground derivations, solver memo) must produce exactly
// the view the legacy nested-loop join produces — same canonical atom
// multiset AND same support multiset — over randomized programs, under both
// duplicate and set semantics, for materialization and for insertion
// continuations.
//
// Views are compared by canonical atom strings (variables renamed by first
// appearance) because the two modes legitimately issue different fresh
// variable ids: the indexed join skips renames for fully-ground tuples and
// never standardizes rejected candidates apart.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "constraint/canonical.h"
#include "constraint/simplify.h"
#include "constraint/solve_cache.h"
#include "maintenance/insert.h"
#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::TestWorld;
using testutil::Unwrap;

std::multiset<std::string> CanonicalAtoms(const View& v) {
  std::multiset<std::string> out;
  for (const ViewAtom& a : v.atoms()) {
    out.insert(CanonicalAtomString(a.pred, a.args, a.constraint));
  }
  return out;
}

std::multiset<std::string> Supports(const View& v) {
  std::multiset<std::string> out;
  for (const ViewAtom& a : v.atoms()) out.insert(a.support.ToString());
  return out;
}

workload::RandomProgramOptions RandomOptions(Rng* rng) {
  // Derived predicates join over earlier DERIVED predicates too, and under
  // duplicate semantics every distinct derivation is an atom — so deep
  // derived chains with wide bodies compound combinatorially. Keep bodies
  // wide only when the derived chain is shallow.
  workload::RandomProgramOptions o;
  o.base_preds = static_cast<int>(rng->Int(1, 3));
  o.max_body = static_cast<int>(rng->Int(1, 3));
  o.derived_preds = o.max_body >= 3 ? 1 : static_cast<int>(rng->Int(1, 3));
  o.facts_per_pred = static_cast<int>(rng->Int(2, 4));
  o.rules_per_pred = o.max_body >= 2 ? 1 : static_cast<int>(rng->Int(1, 2));
  o.const_pool = static_cast<int>(rng->Int(3, 8));
  o.neq_prob = rng->Double(0, 0.5);
  o.cmp_prob = rng->Double(0, 0.5);
  o.interval_fact_prob = rng->Double(0, 0.4);
  return o;
}

// Materializes under the naive oracle, the indexed join with DECLARED
// body order (plan-off, the PR-3 pipeline) and the indexed join with
// selectivity-ORDERED plans, and asserts three-way view equality plus the
// sharp per-run invariants the equivalence argument predicts: identical
// created-atom and suppressed-duplicate counts (rejected candidates are
// exactly tuples the oracle prunes as unsatisfiable, never ones it
// dedups, whatever the enumeration order).
void ExpectModesAgree(const Program& p, DcaEvaluator* eval,
                      FixpointOptions opts, const std::string& trace,
                      FixpointStats* indexed_stats_out = nullptr) {
  FixpointStats naive_stats, declared_stats, ordered_stats;
  opts.max_atoms = 50'000;  // terminate runaway joins; flagged below
  opts.join_mode = JoinMode::kNaive;
  View naive = Unwrap(Materialize(p, eval, opts, &naive_stats));
  opts.join_mode = JoinMode::kIndexed;
  opts.plan_mode = plan::PlanMode::kDeclared;
  View declared = Unwrap(Materialize(p, eval, opts, &declared_stats));
  opts.plan_mode = plan::PlanMode::kOrdered;
  View ordered = Unwrap(Materialize(p, eval, opts, &ordered_stats));
  EXPECT_FALSE(naive_stats.truncated) << "generator produced a blow-up\n"
                                      << trace;

  EXPECT_EQ(CanonicalAtoms(naive), CanonicalAtoms(declared)) << trace;
  EXPECT_EQ(CanonicalAtoms(naive), CanonicalAtoms(ordered)) << trace;
  EXPECT_EQ(Supports(naive), Supports(declared)) << trace;
  // Support multisets are only contractual under DUPLICATE semantics
  // (every derivation kept — order-independent). Set semantics retains
  // ONE representative derivation per canonical atom, and which one wins
  // follows enumeration order: declared order enumerates combinations
  // exactly like the oracle, but selectivity-ordered plans legitimately
  // meet a different derivation first.
  if (opts.semantics == DupSemantics::kDuplicate) {
    EXPECT_EQ(Supports(naive), Supports(ordered)) << trace;
  }
  for (const FixpointStats* s : {&declared_stats, &ordered_stats}) {
    EXPECT_EQ(naive_stats.atoms_created, s->atoms_created) << trace;
    EXPECT_EQ(naive_stats.duplicates_suppressed, s->duplicates_suppressed)
        << trace;
  }
  EXPECT_EQ(naive_stats.index_probes, 0) << "oracle must not probe";
  EXPECT_EQ(naive_stats.plan_reorders, 0) << "oracle must not plan";
  EXPECT_EQ(declared_stats.plan_reorders, 0)
      << "declared plans must keep the written order";
  EXPECT_EQ(declared_stats.probe_intersections, 0)
      << "declared plans must probe the first ground position only";

  // The $MMV_SOLVER_FASTPATH sweep: replaying the ordered run with the
  // solver fast path off (the slow-path oracle) must change NOTHING about
  // the work product — view, supports, and every work counter, including
  // unsat_pruned (each screen rejection replaces a slow-path prune of the
  // SAME candidate). Only the strategy counters differ, and with the
  // screen disabled they are zero by construction.
  opts.join_mode = JoinMode::kIndexed;
  opts.solver.fastpath = false;
  FixpointStats off_stats;
  View fp_off = Unwrap(Materialize(p, eval, opts, &off_stats));
  EXPECT_EQ(CanonicalAtoms(ordered), CanonicalAtoms(fp_off)) << trace;
  EXPECT_EQ(Supports(ordered), Supports(fp_off)) << trace;
  EXPECT_EQ(ordered_stats.atoms_created, off_stats.atoms_created) << trace;
  EXPECT_EQ(ordered_stats.duplicates_suppressed,
            off_stats.duplicates_suppressed)
      << trace;
  EXPECT_EQ(ordered_stats.unsat_pruned, off_stats.unsat_pruned) << trace;
  EXPECT_EQ(ordered_stats.index_probes, off_stats.index_probes) << trace;
  EXPECT_EQ(ordered_stats.ground_rejects, off_stats.ground_rejects) << trace;
  EXPECT_EQ(ordered_stats.rename_skipped, off_stats.rename_skipped) << trace;
  EXPECT_EQ(ordered_stats.iterations, off_stats.iterations) << trace;
  EXPECT_EQ(off_stats.solver.sat_prechecks, 0) << trace;
  EXPECT_EQ(off_stats.solver.sat_rejects, 0) << trace;
  EXPECT_EQ(off_stats.solver.reject_cache_hits, 0) << trace;

  if (indexed_stats_out) *indexed_stats_out = ordered_stats;
}

// The num_threads sweep: 1 (the sequential reference) against 2 and 8,
// plus whatever $MMV_THREADS asks for (the TSan CI job exports 8). A typo
// in the variable fails the suite loudly, like the engine-mode parsers.
std::vector<int> ThreadSweep() {
  std::vector<int> sweep{2, 8};
  Result<int> env = ThreadsFromEnv();
  EXPECT_TRUE(env.ok()) << env.status().ToString();
  if (env.ok() && *env > 1 &&
      std::find(sweep.begin(), sweep.end(), *env) == sweep.end()) {
    sweep.push_back(*env);
  }
  return sweep;
}

// Parallel strata execution must match the sequential engine in everything
// contractual: canonical atom multiset, support multiset — under BOTH
// semantics, since the per-round merge replays the sequential (clause
// index, enumeration) append order, so even set-semantics representative
// supports coincide — and the derivation counters. (Fresh-variable
// numbering and solver cache_hits are the carved-out non-contract.)
void ExpectThreadsAgree(const Program& p, DcaEvaluator* eval,
                        FixpointOptions opts, const std::string& trace) {
  opts.max_atoms = 50'000;
  opts.join_mode = JoinMode::kIndexed;
  opts.num_threads = 1;
  FixpointStats seq_stats;
  View sequential = Unwrap(Materialize(p, eval, opts, &seq_stats));
  for (int threads : ThreadSweep()) {
    opts.num_threads = threads;
    FixpointStats par_stats;
    View parallel = Unwrap(Materialize(p, eval, opts, &par_stats));
    std::string where = trace + "\n(num_threads " +
                        std::to_string(threads) + ")";
    EXPECT_EQ(CanonicalAtoms(sequential), CanonicalAtoms(parallel)) << where;
    EXPECT_EQ(Supports(sequential), Supports(parallel)) << where;
    EXPECT_EQ(seq_stats.atoms_created, par_stats.atoms_created) << where;
    EXPECT_EQ(seq_stats.duplicates_suppressed,
              par_stats.duplicates_suppressed)
        << where;
    EXPECT_EQ(seq_stats.derivations_attempted,
              par_stats.derivations_attempted)
        << where;
    EXPECT_EQ(seq_stats.unsat_pruned, par_stats.unsat_pruned) << where;
    EXPECT_EQ(seq_stats.index_probes, par_stats.index_probes) << where;
    EXPECT_EQ(seq_stats.ground_rejects, par_stats.ground_rejects) << where;
    EXPECT_EQ(seq_stats.rename_skipped, par_stats.rename_skipped) << where;
    EXPECT_EQ(seq_stats.probe_intersections, par_stats.probe_intersections)
        << where;
    EXPECT_EQ(seq_stats.iterations, par_stats.iterations) << where;
  }
}

void RunRandomPrograms(DupSemantics semantics, uint64_t seed_base,
                       int seeds) {
  TestWorld w = TestWorld::Make();
  for (uint64_t seed = seed_base; seed < seed_base + seeds; ++seed) {
    Rng rng(seed);
    workload::RandomProgramOptions o = RandomOptions(&rng);
    Program p = workload::MakeRandomProgram(&rng, o);
    FixpointOptions opts;
    opts.semantics = semantics;
    std::string trace = "seed " + std::to_string(seed) + "\n" + p.ToString();
    ExpectModesAgree(p, w.domains.get(), opts, trace);
    ExpectThreadsAgree(p, w.domains.get(), opts, trace);
    if (::testing::Test::HasFailure()) return;  // keep the first trace
  }
}

// Directed single-SCC recursion through the same thread sweep: one
// recursive predicate group, so the strata axis contributes nothing and
// every bit of parallelism is intra-SCC delta partitioning. The chain
// exercises many small rounds (slices below the partition threshold); the
// star's 301-edge fact window clears it, so the pivot bucket is actually
// sharded across workers.
TEST(JoinDifferential, SingleSccRecursionThreadSweep) {
  TestWorld w = TestWorld::Make();
  for (DupSemantics semantics :
       {DupSemantics::kDuplicate, DupSemantics::kSet}) {
    FixpointOptions opts;
    opts.semantics = semantics;
    {
      Program p =
          workload::MakeTransitiveClosure(workload::ChainEdges(12));
      ExpectThreadsAgree(p, w.domains.get(), opts, "chain TC");
    }
    {
      std::vector<std::pair<int, int>> edges;
      for (int j = 2; j <= 302; ++j) edges.push_back({j, 0});
      edges.push_back({0, 1});
      Program p = workload::MakeTransitiveClosure(edges);
      ExpectThreadsAgree(p, w.domains.get(), opts, "star TC");
    }
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(JoinDifferential, RandomProgramsDuplicateSemantics) {
  RunRandomPrograms(DupSemantics::kDuplicate, 1, 100);
}

TEST(JoinDifferential, RandomProgramsSetSemantics) {
  RunRandomPrograms(DupSemantics::kSet, 1000, 100);
}

// The W_P operator (no solvability requirement) with simplification and
// static-contradiction pruning on: the indexed pipeline stays active and
// must agree. (With pruning or simplification off it silently falls back
// to the oracle, so agreement is structural.)
TEST(JoinDifferential, WpOperatorAgrees) {
  TestWorld w = TestWorld::Make();
  for (uint64_t seed = 2000; seed < 2020; ++seed) {
    Rng rng(seed);
    workload::RandomProgramOptions o = RandomOptions(&rng);
    Program p = workload::MakeRandomProgram(&rng, o);
    FixpointOptions opts;
    opts.op = OperatorKind::kWp;
    ExpectModesAgree(p, w.domains.get(), opts, "wp seed " + std::to_string(seed));
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(JoinDifferential, NaiveFallbackConfigurations) {
  // simplify / pruning off: the engine must fall back to the oracle join
  // (probes stay zero) and trivially agree.
  TestWorld w = TestWorld::Make();
  Rng rng(77);
  Program p = workload::MakeRandomProgram(&rng, RandomOptions(&rng));
  for (int mask = 0; mask < 3; ++mask) {
    // mask 0: both on (pipeline active); 1: pruning off; 2: simplify off.
    FixpointOptions opts;
    opts.simplify = mask != 2;
    opts.prune_static_contradictions = mask != 1;
    opts.join_mode = JoinMode::kIndexed;
    FixpointStats stats;
    View v = Unwrap(Materialize(p, w.domains.get(), opts, &stats));
    if (!opts.simplify || !opts.prune_static_contradictions) {
      EXPECT_EQ(stats.index_probes, 0) << "expected oracle fallback";
      EXPECT_EQ(stats.rename_skipped, 0);
    }
    opts.join_mode = JoinMode::kNaive;
    View n = Unwrap(Materialize(p, w.domains.get(), opts));
    EXPECT_EQ(CanonicalAtoms(n), CanonicalAtoms(v)) << "mask " << mask;
  }
}

// Transitive closure over random DAGs: binary predicates and a recursive
// join — the workload where index probes and the rename-free fast path
// actually fire. (Ground rejection does NOT fire here: the bucket probe is
// exact for these rules, so every candidate it returns already matches —
// see the star test below for rejects.)
TEST(JoinDifferential, TransitiveClosureJoinsAgreeAndProbe) {
  TestWorld w = TestWorld::Make();
  bool saw_probes = false, saw_fastpath = false;
  for (uint64_t seed = 3000; seed < 3020; ++seed) {
    Rng rng(seed);
    int n = static_cast<int>(rng.Int(4, 10));
    Program p = workload::MakeTransitiveClosure(
        workload::RandomDagEdges(&rng, n, static_cast<int>(rng.Int(0, 6))));
    FixpointStats stats;
    ExpectModesAgree(p, w.domains.get(), FixpointOptions(),
                     "tc seed " + std::to_string(seed), &stats);
    saw_probes = saw_probes || stats.index_probes > 0;
    saw_fastpath = saw_fastpath || stats.rename_skipped > 0;
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_TRUE(saw_probes);
  EXPECT_TRUE(saw_fastpath);
}

// A reciprocal join over a star graph: sym(X,Y) <- e(X,Y), e(Y,X) with
// edges e(j,0) and e(0,j). Probing position 0 of the second body atom
// leaves position 1 to check against the already-bound X — the regime
// where incremental unification rejects candidates mid-join.
TEST(JoinDifferential, ReciprocalStarJoinGroundRejects) {
  TestWorld w = TestWorld::Make();
  Program p;
  const int m = 6;
  auto add_edge = [&p](int a, int b) {
    Clause c;
    c.head_pred = "e";
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh();
    c.head_args = {Term::Var(x), Term::Var(y)};
    c.constraint.Add(Primitive::Eq(Term::Var(x), Term::Const(Value(a))));
    c.constraint.Add(Primitive::Eq(Term::Var(y), Term::Const(Value(b))));
    p.AddClause(std::move(c));
  };
  for (int j = 1; j <= m; ++j) {
    add_edge(j, 0);
    add_edge(0, j);
  }
  {
    Clause c;
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh();
    c.head_pred = "sym";
    c.head_args = {Term::Var(x), Term::Var(y)};
    c.body.push_back(BodyAtom{"e", {Term::Var(x), Term::Var(y)}});
    c.body.push_back(BodyAtom{"e", {Term::Var(y), Term::Var(x)}});
    p.AddClause(std::move(c));
  }
  FixpointStats stats;
  ExpectModesAgree(p, w.domains.get(), FixpointOptions(), "reciprocal star",
                   &stats);
  // Under ordered plans BOTH positions of the second body atom are bound, so
  // the multi-position probe picks the smaller (exact) bucket and the
  // mid-join rejection regime moves to the plan-off path: declared order
  // probes position 0 and must reject the mismatches position 1 exposes.
  EXPECT_GT(stats.probe_intersections, 0);
  EXPECT_GT(stats.index_probes, 0);
  {
    FixpointOptions off;
    off.plan_mode = plan::PlanMode::kDeclared;
    FixpointStats off_stats;
    View v = Unwrap(Materialize(p, w.domains.get(), off, &off_stats));
    EXPECT_GT(off_stats.ground_rejects, 0);
    EXPECT_EQ(off_stats.probe_intersections, 0);
    // The ordered plan's exact bucket visits strictly fewer candidates.
    EXPECT_LT(stats.ground_rejects, off_stats.ground_rejects);
  }
  // Every reciprocal pair must be found: sym(j,0) and sym(0,j) for each j.
  FixpointOptions opts;
  View v = Unwrap(Materialize(p, w.domains.get(), opts));
  EXPECT_EQ(v.AtomsFor("sym").size(), 2u * m);
}

// Regression: a head variable not bound through the body ("unsafe") that
// occurs at SEVERAL head positions must stay one variable in the fast
// path's output — p(X, X) <- q(Y) denotes the diagonal, not the cross
// product. (A clause rename maps every occurrence to one fresh variable;
// the first fast-path implementation issued one per occurrence.)
TEST(JoinDifferential, RepeatedUnsafeHeadVariableStaysDiagonal) {
  TestWorld w = TestWorld::Make();
  Program p;
  {
    Clause c;
    VarId y = p.factory()->Fresh();
    c.head_pred = "q";
    c.head_args = {Term::Var(y)};
    c.constraint.Add(Primitive::Eq(Term::Var(y), Term::Const(Value(1))));
    p.AddClause(std::move(c));
  }
  {
    Clause c;
    VarId x = p.factory()->Fresh(), y = p.factory()->Fresh();
    c.head_pred = "p";
    c.head_args = {Term::Var(x), Term::Var(x)};
    c.body.push_back(BodyAtom{"q", {Term::Var(y)}});
    p.AddClause(std::move(c));
  }
  FixpointStats stats;
  ExpectModesAgree(p, w.domains.get(), FixpointOptions(), "p(X,X) <- q(Y)",
                   &stats);
  EXPECT_GT(stats.rename_skipped, 0);  // the fast path must actually run
  View v = Unwrap(Materialize(p, w.domains.get(), FixpointOptions()));
  ASSERT_EQ(v.AtomsFor("p").size(), 1u);
  const ViewAtom& atom = v.atoms()[v.AtomsFor("p")[0]];
  ASSERT_EQ(atom.args.size(), 2u);
  EXPECT_EQ(atom.args[0], atom.args[1]) << atom.ToString();
}

// Guarded chains (every level re-joins the base relation) are the
// sideways-information-passing showcase the benches score on; pin their
// equivalence and counters deterministically.
TEST(JoinDifferential, GuardedChainAgreesAndProbes) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeGuardedChain(/*depth=*/5, /*width=*/6);
  FixpointStats stats;
  ExpectModesAgree(p, w.domains.get(), FixpointOptions(), "guarded chain",
                   &stats);
  EXPECT_GT(stats.index_probes, 0);
  EXPECT_GT(stats.rename_skipped, 0);
  View v = Unwrap(Materialize(p, w.domains.get(), FixpointOptions()));
  EXPECT_EQ(v.size(), 6u * 6u);  // width x (depth + 1), one derivation each
}

// The reversed guarded chain — p{k+1}(X) <- p0(X), p{k}(X), most selective
// atom written LAST — is the join-order showcase: the cost model must
// reorder (pivot-first) and the three engines must still agree.
TEST(JoinDifferential, ReversedGuardedChainReordersAndAgrees) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeGuardedChainReversed(/*depth=*/5, /*width=*/6);
  FixpointStats stats;
  ExpectModesAgree(p, w.domains.get(), FixpointOptions(),
                   "reversed guarded chain", &stats);
  EXPECT_GT(stats.plan_reorders, 0);
  EXPECT_GT(stats.index_probes, 0);
  View v = Unwrap(Materialize(p, w.domains.get(), FixpointOptions()));
  EXPECT_EQ(v.size(), 6u * 6u);  // width x (depth + 1), one derivation each
}

// A bogus $MMV_SOLVER_FASTPATH must fail loudly, mirroring the join-mode,
// plan-mode and thread-count parsers: a typo in CI must not silently run
// the wrong solver tier.
TEST(JoinDifferential, SolverFastpathEnvParsesLoudly) {
  EXPECT_TRUE(Unwrap(ParseSolverFastpath("on")));
  EXPECT_FALSE(Unwrap(ParseSolverFastpath("off")));
  Result<bool> bad = ParseSolverFastpath("bogus");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("unknown solver fastpath mode"),
            std::string::npos)
      << bad.status().ToString();
  Result<bool> env = SolverFastpathFromEnv();
  EXPECT_TRUE(env.ok()) << env.status().ToString();
}

// Directed screen engagement: interval facts whose conjunction is empty.
// The fact constraints cannot dissolve into ground head arguments, so the
// join candidate reaches the solver tier — and the pre-join screen refutes
// it from the two half-ground comparisons, before any rename. The
// fastpath-off replay inside ExpectModesAgree pins that the prune count is
// byte-identical either way.
TEST(JoinDifferential, ContradictoryJoinScreenedBeforeRename) {
  TestWorld w = TestWorld::Make();
  Program p;
  auto add_interval_fact = [&p](const char* pred, CmpOp op, int64_t bound) {
    Clause c;
    VarId x = p.factory()->Fresh();
    c.head_pred = pred;
    c.head_args = {Term::Var(x)};
    c.constraint.Add(Primitive::Cmp(Term::Var(x), op, Term::Const(Value(bound))));
    p.AddClause(std::move(c));
  };
  add_interval_fact("p", CmpOp::kGt, 5);
  add_interval_fact("q", CmpOp::kLt, 2);
  {
    Clause c;
    VarId x = p.factory()->Fresh();
    c.head_pred = "r";
    c.head_args = {Term::Var(x)};
    c.body.push_back(BodyAtom{"p", {Term::Var(x)}});
    c.body.push_back(BodyAtom{"q", {Term::Var(x)}});
    p.AddClause(std::move(c));
  }
  FixpointStats stats;
  ExpectModesAgree(p, w.domains.get(), FixpointOptions(),
                   "contradictory interval join", &stats);
  View v = Unwrap(Materialize(p, w.domains.get(), FixpointOptions()));
  EXPECT_TRUE(v.AtomsFor("r").empty());
  EXPECT_GT(stats.solver.sat_prechecks, 0);
  EXPECT_GT(stats.solver.sat_rejects, 0);
  EXPECT_GT(stats.unsat_pruned, 0);
}

// Insertion continuations (the InsertBatch path, which threads one solver
// memo across its flushes) must agree between modes too.
void RunContinuationDifferential(DupSemantics semantics, uint64_t seed_base) {
  TestWorld w = TestWorld::Make();
  for (uint64_t seed = seed_base; seed < seed_base + 40; ++seed) {
    Rng rng(seed);
    workload::RandomProgramOptions o = RandomOptions(&rng);
    Program p = workload::MakeRandomProgram(&rng, o);

    std::vector<maint::UpdateAtom> requests;
    int k = static_cast<int>(rng.Int(1, 4));
    for (int i = 0; i < k; ++i) {
      maint::UpdateAtom req;
      req.pred = "base" + std::to_string(rng.Int(0, o.base_preds - 1));
      VarId x = p.factory()->Fresh();
      req.args = {Term::Var(x)};
      req.constraint.Add(Primitive::Eq(
          Term::Var(x), Term::Const(Value(rng.Int(0, o.const_pool + 4)))));
      requests.push_back(std::move(req));
    }

    auto run = [&](JoinMode mode, plan::PlanMode plan_mode, int threads,
                   maint::InsertStats* stats, bool fastpath = true) {
      FixpointOptions opts;
      opts.semantics = semantics;
      opts.join_mode = mode;
      opts.plan_mode = plan_mode;
      opts.num_threads = threads;
      opts.solver.fastpath = fastpath;
      View v = Unwrap(Materialize(p, w.domains.get(), opts));
      int ext = 0;
      Status s = maint::InsertBatch(p, &v, requests, w.domains.get(), opts,
                                    stats, &ext);
      EXPECT_TRUE(s.ok()) << s.ToString();
      return v;
    };
    View naive = run(JoinMode::kNaive, plan::PlanMode::kOrdered, 1, nullptr);
    View declared =
        run(JoinMode::kIndexed, plan::PlanMode::kDeclared, 1, nullptr);
    maint::InsertStats seq_stats;
    View ordered =
        run(JoinMode::kIndexed, plan::PlanMode::kOrdered, 1, &seq_stats);
    EXPECT_EQ(CanonicalAtoms(naive), CanonicalAtoms(declared))
        << "seed " << seed << "\n"
        << p.ToString();
    EXPECT_EQ(CanonicalAtoms(naive), CanonicalAtoms(ordered))
        << "seed " << seed << "\n"
        << p.ToString();
    EXPECT_EQ(Supports(naive), Supports(declared)) << "seed " << seed;
    if (semantics == DupSemantics::kDuplicate) {  // see ExpectModesAgree
      EXPECT_EQ(Supports(naive), Supports(ordered)) << "seed " << seed;
    }
    // The insertion continuation with the solver fast path off: the
    // InsertBatch screens (and the batch-scoped rejection memo) may only
    // prune what the slow path proves unsatisfiable, so the maintained
    // view, supports and insertion counters are byte-identical.
    maint::InsertStats fp_off_stats;
    View fp_off = run(JoinMode::kIndexed, plan::PlanMode::kOrdered, 1,
                      &fp_off_stats, /*fastpath=*/false);
    EXPECT_EQ(CanonicalAtoms(ordered), CanonicalAtoms(fp_off))
        << "seed " << seed << " (fastpath off)\n"
        << p.ToString();
    EXPECT_EQ(Supports(ordered), Supports(fp_off))
        << "seed " << seed << " (fastpath off)";
    EXPECT_EQ(seq_stats.add_atoms, fp_off_stats.add_atoms);
    EXPECT_EQ(seq_stats.atoms_added, fp_off_stats.atoms_added);
    EXPECT_EQ(seq_stats.unfold_derivations, fp_off_stats.unfold_derivations);
    EXPECT_EQ(seq_stats.index_probes, fp_off_stats.index_probes);
    EXPECT_EQ(seq_stats.ground_rejects, fp_off_stats.ground_rejects);
    EXPECT_EQ(seq_stats.rename_skipped, fp_off_stats.rename_skipped);
    EXPECT_EQ(fp_off_stats.solver.sat_prechecks, 0);
    EXPECT_EQ(fp_off_stats.solver.sat_rejects, 0);
    EXPECT_EQ(fp_off_stats.solver.reject_cache_hits, 0);
    // The insertion continuation under the num_threads sweep: the parallel
    // engine replays the sequential append order, so the whole maintained
    // view — supports included, both semantics — and the insertion
    // counters must match the single-threaded run exactly.
    for (int threads : ThreadSweep()) {
      maint::InsertStats par_stats;
      View parallel =
          run(JoinMode::kIndexed, plan::PlanMode::kOrdered, threads,
              &par_stats);
      EXPECT_EQ(CanonicalAtoms(ordered), CanonicalAtoms(parallel))
          << "seed " << seed << " num_threads " << threads << "\n"
          << p.ToString();
      EXPECT_EQ(Supports(ordered), Supports(parallel))
          << "seed " << seed << " num_threads " << threads;
      EXPECT_EQ(seq_stats.add_atoms, par_stats.add_atoms);
      EXPECT_EQ(seq_stats.atoms_added, par_stats.atoms_added);
      EXPECT_EQ(seq_stats.unfold_derivations, par_stats.unfold_derivations);
      EXPECT_EQ(seq_stats.index_probes, par_stats.index_probes);
      EXPECT_EQ(seq_stats.ground_rejects, par_stats.ground_rejects);
      EXPECT_EQ(seq_stats.rename_skipped, par_stats.rename_skipped);
    }
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(JoinDifferential, InsertionContinuationsDuplicateSemantics) {
  RunContinuationDifferential(DupSemantics::kDuplicate, 4000);
}

TEST(JoinDifferential, InsertionContinuationsSetSemantics) {
  RunContinuationDifferential(DupSemantics::kSet, 5000);
}

// The set-semantics dedup and the fast-path derive both rely on SimplifyAtom
// being idempotent: an atom that already went through the simplifier must
// canonicalize identically whether or not the canonical pass simplifies
// again (AddAtom passes assume_simplified=true for derived atoms).
TEST(JoinDifferential, CanonicalAssumeSimplifiedIsConsistent) {
  TestWorld w = TestWorld::Make();
  std::string scratch1, scratch2;
  for (uint64_t seed = 6000; seed < 6030; ++seed) {
    Rng rng(seed);
    Program p = workload::MakeRandomProgram(&rng, RandomOptions(&rng));
    View v = Unwrap(Materialize(p, w.domains.get(), FixpointOptions()));
    for (const ViewAtom& a : v.atoms()) {
      // Engine output is simplified (options.simplify default on); a second
      // simplify must not change the canonical form.
      SimplifiedAtom s = SimplifyAtom(a.args, a.constraint);
      CanonicalKey once = CanonicalAtomKey(a.pred, s.head, s.constraint,
                                           /*assume_simplified=*/true,
                                           &scratch1);
      CanonicalKey full = CanonicalAtomKey(a.pred, a.args, a.constraint,
                                           /*assume_simplified=*/false,
                                           &scratch2);
      EXPECT_EQ(scratch1, scratch2) << a.ToString();
      EXPECT_TRUE(once == full);
      // And the hashed key matches the legacy canonical string.
      EXPECT_EQ(scratch2,
                CanonicalAtomString(a.pred, a.args, a.constraint));
    }
  }
}

// Constraints identical modulo fresh-variable numbering share one solver
// memo entry.
TEST(SolveCacheTest, RenamedConstraintsHitTheMemo) {
  SolveCache cache;
  SolverOptions opts;
  opts.cache = &cache;
  Solver solver(nullptr, opts);

  Constraint c1;
  c1.Add(Primitive::Eq(Term::Var(3), Term::Const(Value(5))));
  c1.Add(Primitive::Cmp(Term::Var(4), CmpOp::kLe, Term::Var(3)));
  Constraint c2;  // same shape, shifted variable ids
  c2.Add(Primitive::Eq(Term::Var(90), Term::Const(Value(5))));
  c2.Add(Primitive::Cmp(Term::Var(91), CmpOp::kLe, Term::Var(90)));
  Constraint c3;  // different constant: its own entry
  c3.Add(Primitive::Eq(Term::Var(2), Term::Const(Value(6))));
  c3.Add(Primitive::Cmp(Term::Var(1), CmpOp::kLe, Term::Var(2)));

  EXPECT_EQ(solver.Solve(c1), solver.Solve(c2));
  EXPECT_EQ(solver.stats().cache_hits, 1);
  solver.Solve(c3);
  EXPECT_EQ(solver.stats().cache_hits, 1);
  solver.Solve(c3);
  EXPECT_EQ(solver.stats().cache_hits, 2);
  EXPECT_EQ(cache.stats().hits, 2);
  EXPECT_EQ(cache.size(), 2u);

  // Trivially true/false constraints short-circuit before the memo.
  EXPECT_EQ(solver.Solve(Constraint::True()), SolveOutcome::kSat);
  EXPECT_EQ(solver.Solve(Constraint::False()), SolveOutcome::kUnsat);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace mmv
