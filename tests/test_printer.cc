// Unit tests for pretty printing with symbolic variable names.

#include <gtest/gtest.h>

#include "constraint/printer.h"
#include "test_util.h"

namespace mmv {
namespace {

using testutil::ParseOrDie;

Term V(VarId v) { return Term::Var(v); }
Term C(int64_t c) { return Term::Const(Value(c)); }

TEST(VarNamesTest, FallbackAndRegistered) {
  VarNames names;
  EXPECT_EQ(names.NameOf(7), "X7");
  names.Set(7, "Person");
  EXPECT_EQ(names.NameOf(7), "Person");
  EXPECT_TRUE(VarNames().empty());
  EXPECT_FALSE(names.empty());
}

TEST(PrintTermTest, WithAndWithoutNames) {
  VarNames names;
  names.Set(0, "Who");
  EXPECT_EQ(PrintTerm(V(0), &names), "Who");
  EXPECT_EQ(PrintTerm(V(0), nullptr), "X0");
  EXPECT_EQ(PrintTerm(C(3), &names), "3");
  EXPECT_EQ(PrintTerm(Term::Const(Value("s")), nullptr), "\"s\"");
}

TEST(PrintConstraintTest, AllPrimitiveKinds) {
  Constraint c;
  c.Add(Primitive::Eq(V(0), C(1)));
  c.Add(Primitive::Neq(V(0), C(2)));
  c.Add(Primitive::Cmp(V(0), CmpOp::kLe, C(3)));
  c.Add(Primitive::In(V(1), DomainCall{"d", "f", {V(0), C(4)}}));
  c.Add(Primitive::NotInCall(V(1), DomainCall{"d", "g", {}}));
  EXPECT_EQ(PrintConstraint(c, nullptr),
            "X0 = 1 & X0 != 2 & X0 <= 3 & in(X1, d:f(X0, 4)) & "
            "notin(X1, d:g())");
}

TEST(PrintConstraintTest, NestedBlocksAndSpecials) {
  EXPECT_EQ(PrintConstraint(Constraint::True(), nullptr), "true");
  EXPECT_EQ(PrintConstraint(Constraint::False(), nullptr), "false");

  Constraint c;
  NotBlock outer;
  outer.prims.push_back(Primitive::Eq(V(0), C(1)));
  NotBlock inner;
  inner.prims.push_back(Primitive::Neq(V(0), C(2)));
  outer.inner.push_back(inner);
  c.AddNot(outer);
  EXPECT_EQ(PrintConstraint(c, nullptr), "not(X0 = 1 & not(X0 != 2))");
}

TEST(PrintAtomTest, SuppressesTrueConstraint) {
  EXPECT_EQ(PrintAtom("p", {V(0), C(2)}, Constraint::True(), nullptr),
            "p(X0, 2)");
  Constraint c;
  c.Add(Primitive::Eq(V(0), C(1)));
  EXPECT_EQ(PrintAtom("p", {V(0)}, c, nullptr), "p(X0) <- X0 = 1");
}

TEST(PrintTest, ParserNamesFlowThrough) {
  Program p = ParseOrDie("seen(Who, Whom) <- Who != Whom.");
  std::string s = p.clauses()[0].ToString(p.names());
  EXPECT_NE(s.find("seen(Who, Whom)"), std::string::npos);
  EXPECT_NE(s.find("Who != Whom"), std::string::npos);
}

TEST(PrintTest, ProgramToStringNumbersClauses) {
  Program p = ParseOrDie("a(X) <- X = 1. b(X) <- a(X).");
  std::string s = p.ToString();
  EXPECT_NE(s.find("1. a(X)"), std::string::npos);
  EXPECT_NE(s.find("2. b(X)"), std::string::npos);
}

TEST(PrintTest, ViewAtomIncludesSupport) {
  ViewAtom a;
  a.pred = "p";
  a.args = {C(1)};
  a.support = Support(4, {Support(2)});
  EXPECT_NE(a.ToString().find("<4, <2>>"), std::string::npos);
}

}  // namespace
}  // namespace mmv
