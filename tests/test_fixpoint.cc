// Unit tests for the T_P / W_P fixpoint engine.

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/generators.h"

namespace mmv {
namespace {

using testutil::Instances;
using testutil::InstancesOf;
using testutil::MaterializeOrDie;
using testutil::ParseOrDie;
using testutil::TestWorld;
using testutil::Unwrap;

TEST(FixpointTest, FactsOnly) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1. a(X) <- X = 2.");
  FixpointStats stats;
  View v = Unwrap(Materialize(p, w.domains.get(), {}, &stats));
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(stats.atoms_created, 2);
  EXPECT_FALSE(stats.truncated);
}

TEST(FixpointTest, ChainDerivation) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(/*depth=*/3, /*width=*/2);
  View v = MaterializeOrDie(p, w.domains.get());
  // width atoms per level, depth+1 levels.
  EXPECT_EQ(v.size(), 8u);
  EXPECT_EQ(InstancesOf(v, "p3", w.domains.get()).size(), 2u);
}

TEST(FixpointTest, JoinRule) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    e(X, Y) <- X = 1 & Y = 2.
    e(X, Y) <- X = 2 & Y = 3.
    j(X, Z) <- e(X, Y) & e(Y, Z).
  )");
  View v = MaterializeOrDie(p, w.domains.get());
  EXPECT_EQ(InstancesOf(v, "j", w.domains.get()),
            (std::set<std::string>{"j(1, 3)"}));
}

TEST(FixpointTest, UnsatJoinsPrunedUnderTp) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- X = 1.
    b(X) <- X = 2.
    c(X) <- a(X) & b(X).
  )");
  FixpointStats stats;
  View v = Unwrap(Materialize(p, w.domains.get(), {}, &stats));
  EXPECT_TRUE(InstancesOf(v, "c", w.domains.get()).empty());
  // The contradictory join must be dropped before it reaches the view: by
  // the solver under the naive join (unsat_pruned), or by the indexed
  // join's incremental unification — a mid-join ground reject, or an
  // arg-value probe whose bucket is empty because no b atom carries the
  // bound value.
  EXPECT_GE(stats.unsat_pruned + stats.ground_rejects + stats.index_probes,
            1);

  FixpointOptions naive;
  naive.join_mode = JoinMode::kNaive;
  FixpointStats naive_stats;
  Unwrap(Materialize(p, w.domains.get(), naive, &naive_stats));
  EXPECT_GE(naive_stats.unsat_pruned, 1);
}

TEST(FixpointTest, WpKeepsAllJoinsSyntactically) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- X = 1.
    b(X) <- X = 2.
    c(X) <- a(X) & b(X).
  )");
  FixpointOptions wp;
  wp.op = OperatorKind::kWp;
  wp.prune_static_contradictions = false;
  View v = Unwrap(Materialize(p, w.domains.get(), wp));
  // The c atom exists syntactically (X=1 & X=2 is kept, unsolvable).
  EXPECT_EQ(v.AtomsFor("c").size(), 1u);
  // But it denotes no instances.
  EXPECT_TRUE(InstancesOf(v, "c", w.domains.get()).empty());
}

TEST(FixpointTest, DuplicateSemanticsKeepsOneAtomPerDerivation) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie(R"(
    a(X) <- X = 1.
    b(X) <- a(X).
    b(X) <- a(X).
  )");
  View v = MaterializeOrDie(p, w.domains.get());
  // Two b atoms: one per rule (supports <2,<1>> and <3,<1>>).
  EXPECT_EQ(v.AtomsFor("b").size(), 2u);

  FixpointOptions set_opts;
  set_opts.semantics = DupSemantics::kSet;
  View vs = Unwrap(Materialize(p, w.domains.get(), set_opts));
  EXPECT_EQ(vs.AtomsFor("b").size(), 1u);
}

TEST(FixpointTest, SupportsRecordDerivations) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1. b(X) <- a(X). c(X) <- b(X).");
  View v = MaterializeOrDie(p, w.domains.get());
  for (const ViewAtom& atom : v.atoms()) {
    if (atom.pred == "c") {
      EXPECT_EQ(atom.support.ToString(), "<3, <2, <1>>>");
      EXPECT_EQ(atom.depth, 2);
    }
  }
}

TEST(FixpointTest, TransitiveClosure) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeTransitiveClosure(workload::ChainEdges(5));
  View v = MaterializeOrDie(p, w.domains.get());
  // 4 edges, paths = 4+3+2+1 = 10.
  EXPECT_EQ(InstancesOf(v, "path", w.domains.get()).size(), 10u);
}

TEST(FixpointTest, MaxAtomsTruncates) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(10, 10);
  FixpointOptions opts;
  opts.max_atoms = 20;
  FixpointStats stats;
  View v = Unwrap(Materialize(p, w.domains.get(), opts, &stats));
  EXPECT_TRUE(stats.truncated);
  EXPECT_LE(v.size(), 21u);
}

TEST(FixpointTest, MaxIterationsTruncates) {
  TestWorld w = TestWorld::Make();
  Program p = workload::MakeChain(50, 1);
  FixpointOptions opts;
  opts.max_iterations = 3;
  FixpointStats stats;
  View v = Unwrap(Materialize(p, w.domains.get(), opts, &stats));
  EXPECT_TRUE(stats.truncated);
}

TEST(FixpointTest, MaterializeFromContinuesSeminaive) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("b(X) <- a(X). c(X) <- b(X).");
  // Externally seeded atom a(7).
  View seed;
  ViewAtom a;
  a.pred = "a";
  a.args = {Term::Const(Value(7))};
  a.support = Support(-1);
  seed.Add(a);
  FixpointStats stats;
  View v = Unwrap(MaterializeFrom(p, std::move(seed), w.domains.get(), {},
                                  &stats, 0));
  EXPECT_EQ(Instances(v, w.domains.get()),
            (std::set<std::string>{"a(7)", "b(7)", "c(7)"}));
}

TEST(FixpointTest, DeltaBeginSkipsClosedPart) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("b(X, Y) <- a(X) & a(Y).");
  // Two closed atoms + one new atom; with delta_begin = 2, only pairs
  // touching the new atom are derived... but the closed pairs are assumed
  // derived already, so only 2*2-1 = 3 new pairs appear (new-new, new-old,
  // old-new).
  View seed;
  for (int i = 0; i < 3; ++i) {
    ViewAtom a;
    a.pred = "a";
    a.args = {Term::Const(Value(i))};
    a.support = Support(-1 - i);
    seed.Add(a);
  }
  FixpointStats stats;
  View v = Unwrap(MaterializeFrom(p, std::move(seed), w.domains.get(), {},
                                  &stats, 2));
  // Derived b atoms: pairs involving atom index 2 = 5 of 9 total pairs.
  EXPECT_EQ(v.AtomsFor("b").size(), 5u);
}

TEST(FixpointTest, ArityMismatchIsError) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- X = 1. b(X) <- a(X, X).");
  EXPECT_FALSE(Materialize(p, w.domains.get()).ok());
}

TEST(FixpointTest, EvaluatorErrorPropagates) {
  TestWorld w = TestWorld::Make();
  Program p = ParseOrDie("a(X) <- in(X, nosuchdomain:f(1)).");
  Result<View> r = Materialize(p, w.domains.get());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mmv
