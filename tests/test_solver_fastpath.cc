// Solver fast path: TestSatisfiability / RejectJoin soundness and the
// RejectCache memo.
//
// The contract under test is ONE-SIDED: the screens may only refute what
// the full decision procedure (the $MMV_SOLVER_FASTPATH=off oracle) would
// also refute. Three angles pin it:
//   - deterministic screen cases, each checked against an oracle Solve;
//   - a random-constraint property sweep (precheck kUnsat implies oracle
//     kUnsat; a brute-force grid witness contradicts precheck kUnsat; and
//     Solve outcomes are identical with the fast path on and off);
//   - satisfiable constraints over all six standard domains (arith, tuple,
//     rel, spatial, faces, text), screened cold and again after a full
//     Solve has warmed the rejection memo.
// Plus unit tests of the RejectCache itself: both-polarity records, the
// never-interning Lookup, capacity, and the SolveCache-mirrored SyncEpoch
// invalidation contract.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "constraint/reject_cache.h"
#include "constraint/solver.h"
#include "test_util.h"

namespace mmv {
namespace {

using testutil::TestWorld;
using testutil::Unwrap;

Term V(VarId v) { return Term::Var(v); }
Term C(int64_t v) { return Term::Const(Value(v)); }

// The scripted finite evaluator of test_solver_property.cc, restated here
// (anonymous namespaces do not share): evens/small are fixed sets, succ and
// ge are decidable one-argument calls.
class GridEvaluator : public DcaEvaluator {
 public:
  Result<DcaResult> Evaluate(const std::string& domain,
                             const std::string& function,
                             const std::vector<Value>& args) override {
    if (domain != "g") return Status::NotFound("no domain " + domain);
    if (function == "evens") {
      return DcaResult::Finite({Value(0), Value(2), Value(4), Value(6)});
    }
    if (function == "small") {
      return DcaResult::Finite({Value(0), Value(1), Value(2)});
    }
    if (function == "succ") {
      if (args.size() != 1 || !args[0].is_int()) {
        return Status::TypeError("succ(int)");
      }
      return DcaResult::Finite({Value(args[0].as_int() + 1)});
    }
    if (function == "ge") {
      if (args.size() != 1 || !args[0].is_numeric()) {
        return Status::TypeError("ge(num)");
      }
      Interval i;
      i.integral = true;
      i.lo = args[0].numeric();
      return DcaResult::Of(i);
    }
    return Status::NotFound("no function " + function);
  }

  static bool Member(const std::string& function, int64_t x,
                     const std::vector<int64_t>& args) {
    if (function == "evens") return x >= 0 && x <= 6 && x % 2 == 0;
    if (function == "small") return x >= 0 && x <= 2;
    if (function == "succ") return x == args.at(0) + 1;
    if (function == "ge") return x >= args.at(0);
    return false;
  }
};

// ---------------------------------------------------------------------------
// TestSatisfiability: deterministic screens, each against the oracle.
// ---------------------------------------------------------------------------

class FastpathTest : public ::testing::Test {
 protected:
  // The screen under test and the slow-path oracle share one evaluator.
  GridEvaluator eval_;
  Solver screen_{&eval_};
  Solver oracle_{&eval_, [] {
                   SolverOptions o;
                   o.fastpath = false;
                   return o;
                 }()};

  // Asserts the one-sided contract for one constraint: a screen rejection
  // must be mirrored by the oracle.
  void ExpectScreenSound(const Constraint& c, bool expect_reject) {
    SolveOutcome pre = screen_.TestSatisfiability(c);
    if (expect_reject) {
      EXPECT_EQ(pre, SolveOutcome::kUnsat) << c.ToString();
    } else {
      EXPECT_NE(pre, SolveOutcome::kUnsat) << c.ToString();
    }
    if (pre == SolveOutcome::kUnsat) {
      EXPECT_EQ(oracle_.Solve(c), SolveOutcome::kUnsat)
          << "screen rejected a constraint the oracle accepts: "
          << c.ToString();
    }
  }
};

TEST_F(FastpathTest, TrivialEndpoints) {
  EXPECT_EQ(screen_.TestSatisfiability(Constraint::False()),
            SolveOutcome::kUnsat);
  EXPECT_EQ(screen_.TestSatisfiability(Constraint::True()),
            SolveOutcome::kSat);
  EXPECT_EQ(screen_.stats().sat_prechecks, 2);
  EXPECT_EQ(screen_.stats().sat_rejects, 1);
}

TEST_F(FastpathTest, GroundEqualityConflict) {
  Constraint c;
  c.Add(Primitive::Eq(V(0), C(1)));
  c.Add(Primitive::Eq(V(0), C(2)));
  ExpectScreenSound(c, /*expect_reject=*/true);
}

TEST_F(FastpathTest, EqualityChainsAcrossTwoPasses) {
  // X = Y surfaces no binding on the first pass; the second pass (the
  // screen runs its equality sweep twice) still cannot chain var-var
  // classes — a transitive conflict through an unbound middle variable is
  // deferred, never mis-rejected.
  Constraint c;
  c.Add(Primitive::Eq(V(0), V(1)));
  c.Add(Primitive::Eq(V(1), C(3)));
  c.Add(Primitive::Eq(V(0), C(4)));
  // Pass 1 binds Y=3 and X=4; pass 2 re-reads X = Y as 4 = 3: conflict.
  ExpectScreenSound(c, /*expect_reject=*/true);
}

TEST_F(FastpathTest, NeqSameVarRejects) {
  Constraint c;
  c.Add(Primitive::Neq(V(0), V(0)));
  ExpectScreenSound(c, /*expect_reject=*/true);
}

TEST_F(FastpathTest, GroundComparisonRejects) {
  Constraint c;
  c.Add(Primitive::Eq(V(0), C(3)));
  c.Add(Primitive::Cmp(V(0), CmpOp::kLt, C(2)));
  ExpectScreenSound(c, /*expect_reject=*/true);
}

TEST_F(FastpathTest, EmptyIntervalRejects) {
  Constraint c;
  c.Add(Primitive::Cmp(V(0), CmpOp::kLt, C(2)));
  c.Add(Primitive::Cmp(V(0), CmpOp::kGt, C(5)));
  ExpectScreenSound(c, /*expect_reject=*/true);
}

TEST_F(FastpathTest, VarVarComparisonIsDeferredNotRejected) {
  // X < X is unsatisfiable, but var-var comparisons are deferred by the
  // full procedure too (intervals attach to classes, not to the relation
  // BETWEEN classes) — so the screen, which may never be stricter than
  // its oracle, must also stand down.
  Constraint c;
  c.Add(Primitive::Cmp(V(0), CmpOp::kLt, V(0)));
  EXPECT_EQ(oracle_.Solve(c), SolveOutcome::kSatDeferred);
  EXPECT_EQ(screen_.TestSatisfiability(c), SolveOutcome::kSatDeferred);
}

TEST_F(FastpathTest, SatisfiableConjunctionNotRejected) {
  Constraint c;
  c.Add(Primitive::Eq(V(0), C(4)));
  c.Add(Primitive::Cmp(V(0), CmpOp::kGe, C(2)));
  c.Add(Primitive::In(V(0), DomainCall{"g", "evens", {}}));
  ExpectScreenSound(c, /*expect_reject=*/false);
}

TEST_F(FastpathTest, BudgetStarvedScreenStandsDown) {
  // With max_choice_branches < 1 the full Solve defers EVERYTHING, so the
  // screen has no oracle rejection to mirror and must not reject.
  SolverOptions starved;
  starved.max_choice_branches = 0;
  Solver solver(&eval_, starved);
  Constraint c = Constraint::False();
  EXPECT_EQ(solver.TestSatisfiability(c), SolveOutcome::kUnsat)
      << "bottom is still bottom";
  Constraint ground;
  ground.Add(Primitive::Eq(V(0), C(1)));
  ground.Add(Primitive::Eq(V(0), C(2)));
  EXPECT_EQ(solver.TestSatisfiability(ground), SolveOutcome::kSatDeferred);
}

// ---------------------------------------------------------------------------
// Property sweep: precheck kUnsat implies oracle kUnsat; grid witnesses are
// never rejected; Solve outcomes are identical with the fast path on/off.
// ---------------------------------------------------------------------------

Constraint RandomConstraint(Rng* rng, int n, int depth) {
  auto random_term = [&](bool allow_const) -> Term {
    if (allow_const && rng->Chance(0.4)) {
      return Term::Const(Value(rng->Int(-1, 8)));
    }
    return Term::Var(static_cast<VarId>(rng->Int(0, n - 1)));
  };
  auto random_prim = [&]() -> Primitive {
    switch (rng->Int(0, 5)) {
      case 0:
        return Primitive::Eq(random_term(false), random_term(true));
      case 1:
        return Primitive::Neq(random_term(false), random_term(true));
      case 2: {
        CmpOp op = static_cast<CmpOp>(rng->Int(0, 3));
        return Primitive::Cmp(random_term(false), op, random_term(true));
      }
      case 3: {
        const char* fns[] = {"evens", "small"};
        return Primitive::In(random_term(false),
                             DomainCall{"g", fns[rng->Int(0, 1)], {}});
      }
      case 4:
        return Primitive::In(random_term(false),
                             DomainCall{"g", "succ", {random_term(true)}});
      default:
        return Primitive::In(
            random_term(false),
            DomainCall{"g", "ge", {Term::Const(Value(rng->Int(0, 7)))}});
    }
  };

  Constraint c;
  int prims = static_cast<int>(rng->Int(1, 4));
  for (int i = 0; i < prims; ++i) c.Add(random_prim());
  if (depth > 0) {
    int blocks = static_cast<int>(rng->Int(0, 2));
    for (int b = 0; b < blocks; ++b) {
      Constraint inner = RandomConstraint(rng, n, depth - 1);
      if (!inner.is_true() && !inner.is_false()) {
        c.AddNot(Constraint::Negate(inner));
      }
    }
  }
  return c;
}

bool EvalPrimGround(const Primitive& p,
                    const std::map<VarId, int64_t>& env) {
  auto val = [&](const Term& t) -> Value {
    if (t.is_const()) return t.constant();
    return Value(env.at(t.var()));
  };
  switch (p.kind) {
    case PrimKind::kEq:
      return val(p.lhs) == val(p.rhs);
    case PrimKind::kNeq:
      return !(val(p.lhs) == val(p.rhs));
    case PrimKind::kCmp: {
      Value a = val(p.lhs), b = val(p.rhs);
      if (!a.is_numeric() || !b.is_numeric()) return false;
      switch (p.op) {
        case CmpOp::kLt:
          return a.numeric() < b.numeric();
        case CmpOp::kLe:
          return a.numeric() <= b.numeric();
        case CmpOp::kGt:
          return a.numeric() > b.numeric();
        case CmpOp::kGe:
          return a.numeric() >= b.numeric();
      }
      return false;
    }
    case PrimKind::kIn:
    case PrimKind::kNotIn: {
      Value x = val(p.lhs);
      if (!x.is_int()) return p.kind == PrimKind::kNotIn;
      std::vector<int64_t> args;
      for (const Term& t : p.call.args) {
        Value v = val(t);
        if (!v.is_int()) return p.kind == PrimKind::kNotIn;
        args.push_back(v.as_int());
      }
      bool member = GridEvaluator::Member(p.call.function, x.as_int(), args);
      return p.kind == PrimKind::kIn ? member : !member;
    }
  }
  return false;
}

bool EvalBlockGround(const NotBlock& b, const std::map<VarId, int64_t>& env);

bool EvalConstraintGround(const Constraint& c,
                          const std::map<VarId, int64_t>& env) {
  if (c.is_false()) return false;
  for (const Primitive& p : c.prims()) {
    if (!EvalPrimGround(p, env)) return false;
  }
  for (const NotBlock& b : c.nots()) {
    if (EvalBlockGround(b, env)) return false;
  }
  return true;
}

bool EvalBlockGround(const NotBlock& b, const std::map<VarId, int64_t>& env) {
  for (const Primitive& p : b.prims) {
    if (!EvalPrimGround(p, env)) return false;
  }
  for (const NotBlock& i : b.inner) {
    if (EvalBlockGround(i, env)) return false;
  }
  return true;
}

bool BruteForceSatOnGrid(const Constraint& c,
                         const std::vector<VarId>& vars) {
  std::map<VarId, int64_t> env;
  std::function<bool(size_t)> rec = [&](size_t i) -> bool {
    if (i == vars.size()) return EvalConstraintGround(c, env);
    for (int64_t v = 0; v <= 7; ++v) {
      env[vars[i]] = v;
      if (rec(i + 1)) return true;
    }
    return false;
  };
  return rec(0);
}

class FastpathGridProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FastpathGridProperty, PrecheckNeverStricterThanOracle) {
  Rng rng(GetParam());
  GridEvaluator eval;
  RejectCache memo;
  SolverOptions on;
  on.reject_cache = &memo;  // warm memo must not change any verdict
  Solver fast(&eval, on);
  SolverOptions off;
  off.fastpath = false;
  Solver oracle(&eval, off);

  for (int trial = 0; trial < 60; ++trial) {
    int n = static_cast<int>(rng.Int(1, 3));
    Constraint c = RandomConstraint(&rng, n, 2);
    SolveOutcome pre = fast.TestSatisfiability(c);
    SolveOutcome slow = oracle.Solve(c);
    ASSERT_NE(slow, SolveOutcome::kError) << oracle.last_status().ToString();

    if (pre == SolveOutcome::kUnsat) {
      EXPECT_EQ(slow, SolveOutcome::kUnsat)
          << "seed " << GetParam() << " trial " << trial
          << "\nconstraint: " << c.ToString();
      EXPECT_FALSE(BruteForceSatOnGrid(c, c.Variables()))
          << "precheck rejected a constraint with a grid witness\nseed "
          << GetParam() << " trial " << trial << "\nconstraint: "
          << c.ToString();
    }
    // The fast path changes no Solve outcome — byte-identical to the
    // oracle (its Solve call also records memberships into the memo,
    // warming it for later trials without perturbing verdicts).
    EXPECT_EQ(fast.Solve(c), slow)
        << "seed " << GetParam() << " trial " << trial << "\nconstraint: "
        << c.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastpathGridProperty,
                         ::testing::Range(uint64_t{200}, uint64_t{212}));

// ---------------------------------------------------------------------------
// Standard domains: satisfiable constraints are never rejected, cold or
// with a memo warmed by the full Solve.
// ---------------------------------------------------------------------------

class FastpathDomainsTest : public ::testing::Test {
 protected:
  void SetUp() override { world_ = TestWorld::Make(); }

  // Screens cold, solves (recording memberships into the memo), then
  // screens again warm: a satisfiable constraint must never be rejected.
  void ExpectNeverRejected(const Constraint& c) {
    RejectCache memo;
    SolverOptions opts;
    opts.reject_cache = &memo;
    Solver solver(world_.domains.get(), opts);
    EXPECT_NE(solver.TestSatisfiability(c), SolveOutcome::kUnsat)
        << "cold screen rejected: " << c.ToString();
    SolveOutcome full = solver.Solve(c);
    EXPECT_TRUE(IsSolvable(full)) << c.ToString() << "\n"
                                  << solver.last_status().ToString();
    EXPECT_NE(solver.TestSatisfiability(c), SolveOutcome::kUnsat)
        << "warm screen rejected (memo recorded " << memo.size()
        << " pairs): " << c.ToString();
  }

  TestWorld world_;
};

TEST_F(FastpathDomainsTest, ArithSatisfiableNeverRejected) {
  Constraint open;  // X in greater(5): interval, witness X = 6
  open.Add(Primitive::In(V(0), DomainCall{"arith", "greater", {C(5)}}));
  ExpectNeverRejected(open);
  Constraint ground;  // 6 in greater(5): decided ground membership
  ground.Add(Primitive::In(C(6), DomainCall{"arith", "greater", {C(5)}}));
  ExpectNeverRejected(ground);
}

TEST_F(FastpathDomainsTest, TupleSatisfiableNeverRejected) {
  Term t = Term::Const(Value(ValueList{Value("a"), Value(2)}));
  Constraint open;  // X in get(("a", 2), 0): witness X = "a"
  open.Add(Primitive::In(V(0), DomainCall{"tuple", "get", {t, C(0)}}));
  ExpectNeverRejected(open);
  Constraint ground;
  ground.Add(Primitive::In(Term::Const(Value("a")),
                           DomainCall{"tuple", "get", {t, C(0)}}));
  ExpectNeverRejected(ground);
}

TEST_F(FastpathDomainsTest, RelSatisfiableNeverRejected) {
  ASSERT_TRUE(world_.catalog->CreateTable(rel::Schema{"t", {"k"}}).ok());
  ASSERT_TRUE(world_.catalog->Insert("t", {Value("a")}).ok());
  Term table = Term::Const(Value("t"));
  Constraint open;  // X in count(t): witness X = 1
  open.Add(Primitive::In(V(0), DomainCall{"rel", "count", {table}}));
  ExpectNeverRejected(open);
  Constraint ground;
  ground.Add(Primitive::In(C(1), DomainCall{"rel", "count", {table}}));
  ExpectNeverRejected(ground);
}

TEST_F(FastpathDomainsTest, SpatialSatisfiableNeverRejected) {
  std::vector<Term> args = {Term::Const(Value(0.0)), Term::Const(Value(0.0)),
                            Term::Const(Value(3.0)), Term::Const(Value(4.0))};
  Constraint open;  // X in distance(0,0,3,4): witness X = 5.0
  open.Add(Primitive::In(V(0), DomainCall{"spatial", "distance", args}));
  ExpectNeverRejected(open);
  Constraint ground;
  ground.Add(Primitive::In(Term::Const(Value(5.0)),
                           DomainCall{"spatial", "distance", args}));
  ExpectNeverRejected(ground);
}

TEST_F(FastpathDomainsTest, FacesSatisfiableNeverRejected) {
  dom::FaceDomain* faces = world_.handles.facextract;
  ASSERT_TRUE(faces->AddPerson("alice", 1).ok());
  std::string f1 = Unwrap(faces->AddSurveillanceFace("surveillance", "ph1", 1));
  Term face = Term::Const(Value(f1));
  Constraint open;  // X in findname(f1): witness X = "alice"
  open.Add(Primitive::In(V(0), DomainCall{"faces", "findname", {face}}));
  ExpectNeverRejected(open);
  Constraint ground;
  ground.Add(Primitive::In(Term::Const(Value("alice")),
                           DomainCall{"faces", "findname", {face}}));
  ExpectNeverRejected(ground);
}

TEST_F(FastpathDomainsTest, TextSatisfiableNeverRejected) {
  ASSERT_TRUE(
      world_.handles.text->AddDocument("d1", "the quick brown fox").ok());
  Term word = Term::Const(Value("quick"));
  Constraint open;  // X in match("quick"): witness X = "d1"
  open.Add(Primitive::In(V(0), DomainCall{"text", "match", {word}}));
  ExpectNeverRejected(open);
  Constraint ground;
  ground.Add(Primitive::In(Term::Const(Value("d1")),
                           DomainCall{"text", "match", {word}}));
  ExpectNeverRejected(ground);
}

// ---------------------------------------------------------------------------
// RejectCache: records, lookups, capacity, epoch invalidation.
// ---------------------------------------------------------------------------

TEST(RejectCacheTest, RecordsBothPolarities) {
  RejectCache cache;
  cache.Record(Value(3), "g:evens", false);
  cache.Record(Value(4), "g:evens", true);

  const bool* odd = cache.Lookup(Value(3), "g:evens");
  ASSERT_NE(odd, nullptr);
  EXPECT_FALSE(*odd);
  const bool* even = cache.Lookup(Value(4), "g:evens");
  ASSERT_NE(even, nullptr);
  EXPECT_TRUE(*even);

  EXPECT_EQ(cache.Lookup(Value(5), "g:evens"), nullptr);
  EXPECT_EQ(cache.Lookup(Value(3), "g:small"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().records, 2);
  EXPECT_EQ(cache.stats().hits, 2);
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(RejectCacheTest, ReRecordingIsANoOp) {
  RejectCache cache;
  cache.Record(Value(3), "g:evens", false);
  cache.Record(Value(3), "g:evens", false);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().records, 1);
}

TEST(RejectCacheTest, CapacityDropsNewPairsNeverEvicts) {
  RejectCache cache(/*max_entries=*/2);
  cache.Record(Value(1), "k", true);
  cache.Record(Value(2), "k", true);
  cache.Record(Value(3), "k", true);  // dropped
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().full, 1);
  EXPECT_NE(cache.Lookup(Value(1), "k"), nullptr);
  EXPECT_NE(cache.Lookup(Value(2), "k"), nullptr);
  EXPECT_EQ(cache.Lookup(Value(3), "k"), nullptr);
  // Re-recording an existing pair at capacity is still the no-op, not a
  // drop.
  cache.Record(Value(1), "k", true);
  EXPECT_EQ(cache.stats().full, 1);
}

TEST(RejectCacheTest, SyncEpochMirrorsSolveCacheContract) {
  RejectCache cache;
  EXPECT_EQ(cache.epoch(), -1);
  EXPECT_EQ(cache.epoch_source(), 0u);

  // First tagging of an EMPTY memo drops nothing.
  EXPECT_FALSE(cache.SyncEpoch(/*source=*/7, /*epoch=*/5));
  cache.Record(Value(1), "k", true);

  // Same (source, epoch): no-op, the memo survives.
  EXPECT_FALSE(cache.SyncEpoch(7, 5));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.epoch(), 5);
  EXPECT_EQ(cache.epoch_source(), 7u);

  // The epoch moved: flush.
  EXPECT_TRUE(cache.SyncEpoch(7, 6));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.epoch(), 6);
  EXPECT_EQ(cache.stats().epoch_flushes, 1);
  EXPECT_EQ(cache.Lookup(Value(1), "k"), nullptr);

  // A different evaluator at the SAME epoch value is a different state
  // source: flush again (nothing to drop here, so false).
  cache.Record(Value(2), "k", false);
  EXPECT_TRUE(cache.SyncEpoch(8, 6));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.epoch_source(), 8u);
}

TEST(RejectCacheTest, ClearDropsEntriesKeepsStats) {
  RejectCache cache;
  cache.Record(Value(1), "k", true);
  ASSERT_NE(cache.Lookup(Value(1), "k"), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(Value(1), "k"), nullptr);
  EXPECT_EQ(cache.stats().records, 1);
}

// End-to-end: a full Solve records the decided ground membership; the next
// screen of the same doomed literal refutes from the memo, counted as a
// reject_cache_hit (memo-dependent, distinct from the deterministic
// sat_rejects).
TEST(RejectCacheTest, SolveWarmsScreenRefutation) {
  GridEvaluator eval;
  RejectCache memo;
  SolverOptions opts;
  opts.reject_cache = &memo;
  Solver solver(&eval, opts);

  Constraint doomed;  // 3 in evens: ground, false
  doomed.Add(Primitive::In(C(3), DomainCall{"g", "evens", {}}));

  // Cold: the deterministic screens defer In literals, so the first Solve
  // runs the full procedure — and records (3, g:evens) = false.
  EXPECT_EQ(solver.Solve(doomed), SolveOutcome::kUnsat);
  EXPECT_GT(memo.size(), 0u);
  EXPECT_EQ(solver.stats().reject_cache_hits, 0);

  // Warm: the screen refutes from the record before any solving.
  EXPECT_EQ(solver.TestSatisfiability(doomed), SolveOutcome::kUnsat);
  EXPECT_EQ(solver.stats().reject_cache_hits, 1);

  // A recorded membership refutes the OPPOSITE polarity too.
  Constraint not_in;  // not(3 in evens) is satisfiable; 4 in evens recorded
  Constraint sat;     // 4 in evens: true — screen must NOT refute
  sat.Add(Primitive::In(C(4), DomainCall{"g", "evens", {}}));
  EXPECT_EQ(solver.Solve(sat), SolveOutcome::kSat);
  Constraint doomed_notin;
  doomed_notin.Add(Primitive::NotInCall(C(4), DomainCall{"g", "evens", {}}));
  EXPECT_EQ(solver.TestSatisfiability(doomed_notin), SolveOutcome::kUnsat);

  // After an epoch flush the memo is gone: the screen defers again.
  memo.SyncEpoch(1, 99);
  EXPECT_EQ(solver.TestSatisfiability(doomed), SolveOutcome::kSatDeferred);
}

// ---------------------------------------------------------------------------
// RejectJoin: whole-candidate screening before rename and assembly.
// ---------------------------------------------------------------------------

class RejectJoinTest : public ::testing::Test {
 protected:
  GridEvaluator eval_;
  Solver solver_{&eval_};
  Constraint true_;
};

TEST_F(RejectJoinTest, ClauseBindingContradictsInstance) {
  // Clause: ... :- p(X), X = 4. Candidate instance p(3).
  Constraint clause;
  clause.Add(Primitive::Eq(V(0), C(4)));
  TermVec inst_args = {C(3)};
  TermVec pattern = {V(0)};
  EXPECT_TRUE(solver_.RejectJoin(
      clause, {{&inst_args, &true_, &pattern}}));
  EXPECT_EQ(solver_.stats().sat_rejects, 1);
}

TEST_F(RejectJoinTest, CrossInstanceConflict) {
  // Clause: ... :- p(X), q(X). Candidates p(3), q(4): 3 = X ^ 4 = X.
  TermVec p_args = {C(3)};
  TermVec q_args = {C(4)};
  TermVec pattern = {V(0)};
  EXPECT_TRUE(solver_.RejectJoin(true_, {{&p_args, &true_, &pattern},
                                         {&q_args, &true_, &pattern}}));
}

TEST_F(RejectJoinTest, InstanceConstraintParticipates) {
  // Candidate p(Y) with constraint Y > 5, equated to pattern p(3).
  Constraint inst_c;
  inst_c.Add(Primitive::Cmp(V(0), CmpOp::kGt, C(5)));
  TermVec inst_args = {V(0)};
  TermVec pattern = {C(3)};
  EXPECT_TRUE(solver_.RejectJoin(true_, {{&inst_args, &inst_c, &pattern}}));
}

TEST_F(RejectJoinTest, ComponentScopesAreStandardizedApart) {
  // Two instances both use THEIR OWN variable 0, bound to different
  // values; the patterns keep them apart. Conflating the scopes would
  // falsely reject a satisfiable join.
  Constraint c1;
  c1.Add(Primitive::Eq(V(0), C(3)));
  Constraint c2;
  c2.Add(Primitive::Eq(V(0), C(4)));
  TermVec a1 = {V(0)};
  TermVec a2 = {V(0)};
  TermVec pat1 = {V(10)};
  TermVec pat2 = {V(11)};
  EXPECT_FALSE(solver_.RejectJoin(
      true_, {{&a1, &c1, &pat1}, {&a2, &c2, &pat2}}));
}

TEST_F(RejectJoinTest, ArityMismatchYieldsNoVerdict) {
  // The slow path owns the InvalidArgument error for malformed joins: the
  // screen must not preempt it (and must not even count a precheck).
  TermVec inst_args = {C(3)};
  TermVec pattern = {V(0), V(1)};
  EXPECT_FALSE(solver_.RejectJoin(true_, {{&inst_args, &true_, &pattern}}));
  EXPECT_EQ(solver_.stats().sat_prechecks, 0);
}

TEST_F(RejectJoinTest, SatisfiableJoinNotRejected) {
  Constraint clause;
  clause.Add(Primitive::Cmp(V(0), CmpOp::kGe, C(2)));
  TermVec inst_args = {C(3)};
  TermVec pattern = {V(0)};
  EXPECT_FALSE(solver_.RejectJoin(clause, {{&inst_args, &true_, &pattern}}));
  EXPECT_EQ(solver_.stats().sat_rejects, 0);
}

TEST_F(RejectJoinTest, FastpathOffNeverRejects) {
  SolverOptions off;
  off.fastpath = false;
  Solver solver(&eval_, off);
  Constraint clause;
  clause.Add(Primitive::Eq(V(0), C(4)));
  TermVec inst_args = {C(3)};
  TermVec pattern = {V(0)};
  EXPECT_FALSE(solver.RejectJoin(clause, {{&inst_args, &true_, &pattern}}));
  EXPECT_EQ(solver.stats().sat_prechecks, 0);
}

}  // namespace
}  // namespace mmv
